// A nonnegative number stored as its natural log, for quantities like the
// (2n-5)!! tree counts that overflow double (4.2e284 fits, but 200 taxa do
// not). Supports the few operations tree counting and reporting need.
#pragma once

#include <cmath>
#include <string>

namespace fdml {

class LogNumber {
 public:
  LogNumber() : log_value_(-std::numeric_limits<double>::infinity()) {}

  static LogNumber from_value(double v) {
    LogNumber n;
    n.log_value_ = std::log(v);
    return n;
  }
  static LogNumber from_log(double lg) {
    LogNumber n;
    n.log_value_ = lg;
    return n;
  }

  double log() const { return log_value_; }
  double log10() const { return log_value_ / std::log(10.0); }

  /// Value as double; +inf if it overflows.
  double value() const { return std::exp(log_value_); }

  LogNumber operator*(const LogNumber& o) const {
    return from_log(log_value_ + o.log_value_);
  }
  LogNumber operator/(const LogNumber& o) const {
    return from_log(log_value_ - o.log_value_);
  }
  LogNumber& operator*=(const LogNumber& o) {
    log_value_ += o.log_value_;
    return *this;
  }

  bool operator<(const LogNumber& o) const { return log_value_ < o.log_value_; }
  bool operator>(const LogNumber& o) const { return log_value_ > o.log_value_; }

  /// Scientific-notation string like "2.84e+74" regardless of magnitude.
  std::string to_string(int significant_digits = 3) const;

 private:
  double log_value_;
};

}  // namespace fdml
