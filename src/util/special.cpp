#include "util/special.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace fdml {

namespace {

// Series representation of P(a,x), valid/fast for x < a + 1.
double gamma_p_series(double a, double x) {
  const double gln = std::lgamma(a);
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - gln);
}

// Continued-fraction representation of Q(a,x) = 1 - P(a,x), for x >= a + 1.
double gamma_q_contfrac(double a, double x) {
  const double gln = std::lgamma(a);
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - gln) * h;
}

}  // namespace

double gamma_p(double a, double x) {
  if (a <= 0.0) throw std::invalid_argument("gamma_p: shape must be > 0");
  if (x < 0.0) throw std::invalid_argument("gamma_p: x must be >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_contfrac(a, x);
}

double gamma_p_inverse(double a, double p) {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  // Wilson–Hilferty: chi2_df quantile ~ df * (1 - 2/(9 df) + z sqrt(2/(9 df)))^3
  // with a = df/2, x = chi2/2.
  const double df = 2.0 * a;
  // Inverse-normal via Acklam-style rational approximation.
  auto inv_normal = [](double q) {
    static const double a1 = -3.969683028665376e+01, a2 = 2.209460984245205e+02,
                        a3 = -2.759285104469687e+02, a4 = 1.383577518672690e+02,
                        a5 = -3.066479806614716e+01, a6 = 2.506628277459239e+00;
    static const double b1 = -5.447609879822406e+01, b2 = 1.615858368580409e+02,
                        b3 = -1.556989798598866e+02, b4 = 6.680131188771972e+01,
                        b5 = -1.328068155288572e+01;
    static const double c1 = -7.784894002430293e-03, c2 = -3.223964580411365e-01,
                        c3 = -2.400758277161838e+00, c4 = -2.549732539343734e+00,
                        c5 = 4.374664141464968e+00, c6 = 2.938163982698783e+00;
    static const double d1 = 7.784695709041462e-03, d2 = 3.224671290700398e-01,
                        d3 = 2.445134137142996e+00, d4 = 3.754408661907416e+00;
    const double plow = 0.02425, phigh = 1.0 - plow;
    if (q < plow) {
      const double r = std::sqrt(-2.0 * std::log(q));
      return (((((c1 * r + c2) * r + c3) * r + c4) * r + c5) * r + c6) /
             ((((d1 * r + d2) * r + d3) * r + d4) * r + 1.0);
    }
    if (q > phigh) {
      const double r = std::sqrt(-2.0 * std::log(1.0 - q));
      return -(((((c1 * r + c2) * r + c3) * r + c4) * r + c5) * r + c6) /
             ((((d1 * r + d2) * r + d3) * r + d4) * r + 1.0);
    }
    const double r = q - 0.5;
    const double s = r * r;
    return (((((a1 * s + a2) * s + a3) * s + a4) * s + a5) * s + a6) * r /
           (((((b1 * s + b2) * s + b3) * s + b4) * s + b5) * s + 1.0);
  };
  const double z = inv_normal(p);
  const double wh = 1.0 - 2.0 / (9.0 * df) + z * std::sqrt(2.0 / (9.0 * df));
  double x = 0.5 * df * wh * wh * wh;
  if (!(x > 0.0)) x = 0.5 * std::exp((std::log(p * df) + std::lgamma(a)) / a);

  // Bracketed Newton on f(x) = P(a, x) - p. For small shapes the quantile
  // can be ~1e-18 while the initial guess is O(1), so the bracket (with
  // geometric bisection fallback) is what guarantees convergence.
  double lo = 0.0;
  double hi = std::max(x, 1.0);
  while (gamma_p(a, hi) < p) hi *= 4.0;
  if (!(x > lo && x < hi)) x = 0.5 * hi;
  const double gln = std::lgamma(a);
  for (int iter = 0; iter < 200; ++iter) {
    const double f = gamma_p(a, x) - p;
    if (std::fabs(f) < 1e-13) break;
    if (f > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    const double logpdf = -x + (a - 1.0) * std::log(x) - gln;
    const double pdf = std::exp(logpdf);
    double next = pdf > 0.0 ? x - f / pdf : -1.0;
    if (!(next > lo && next < hi)) {
      // Geometric bisection handles quantiles spanning many decades.
      next = lo > 0.0 ? std::sqrt(lo * hi) : 0.5 * hi;
    }
    if (hi - lo < 1e-15 * hi) {
      x = next;
      break;
    }
    x = next;
  }
  return x;
}

double gamma_quantile(double p, double shape, double scale) {
  return gamma_p_inverse(shape, p) * scale;
}

double chi_square_quantile(double p, double df) {
  return 2.0 * gamma_p_inverse(0.5 * df, p);
}

double log_double_factorial(long long k) {
  if (k <= 0) return 0.0;
  // (2m-1)!! = (2m)! / (2^m m!)  for odd k = 2m-1.
  if (k % 2 == 1) {
    const double m = static_cast<double>((k + 1) / 2);
    return std::lgamma(2.0 * m + 1.0) - m * std::log(2.0) -
           std::lgamma(m + 1.0);
  }
  // (2m)!! = 2^m m!
  const double m = static_cast<double>(k / 2);
  return m * std::log(2.0) + std::lgamma(m + 1.0);
}

}  // namespace fdml
