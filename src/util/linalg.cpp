#include "util/linalg.hpp"

#include <algorithm>
#include <cmath>

namespace fdml {

Mat4 mat4_identity() {
  Mat4 m{};
  for (std::size_t i = 0; i < kNumStates; ++i) m[i][i] = 1.0;
  return m;
}

Mat4 mat4_mul(const Mat4& a, const Mat4& b) {
  Mat4 out{};
  for (std::size_t i = 0; i < kNumStates; ++i) {
    for (std::size_t k = 0; k < kNumStates; ++k) {
      const double aik = a[i][k];
      for (std::size_t j = 0; j < kNumStates; ++j) {
        out[i][j] += aik * b[k][j];
      }
    }
  }
  return out;
}

Vec4 mat4_mul_vec(const Mat4& a, const Vec4& v) {
  Vec4 out{};
  for (std::size_t i = 0; i < kNumStates; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < kNumStates; ++j) sum += a[i][j] * v[j];
    out[i] = sum;
  }
  return out;
}

Mat4 mat4_transpose(const Mat4& a) {
  Mat4 out{};
  for (std::size_t i = 0; i < kNumStates; ++i) {
    for (std::size_t j = 0; j < kNumStates; ++j) out[i][j] = a[j][i];
  }
  return out;
}

double mat4_max_abs_diff(const Mat4& a, const Mat4& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < kNumStates; ++i) {
    for (std::size_t j = 0; j < kNumStates; ++j) {
      worst = std::max(worst, std::fabs(a[i][j] - b[i][j]));
    }
  }
  return worst;
}

Mat4 mat4_expm(const Mat4& a) {
  // Scale by 2^s so the norm is small, Taylor-expand, square s times.
  double norm = 0.0;
  for (const auto& row : a) {
    double sum = 0.0;
    for (double x : row) sum += std::fabs(x);
    norm = std::max(norm, sum);
  }
  int s = 0;
  while (norm > 0.5) {
    norm *= 0.5;
    ++s;
  }
  Mat4 scaled = a;
  const double factor = std::ldexp(1.0, -s);
  for (auto& row : scaled) {
    for (double& x : row) x *= factor;
  }
  Mat4 result = mat4_identity();
  Mat4 term = mat4_identity();
  for (int k = 1; k <= 24; ++k) {
    term = mat4_mul(term, scaled);
    for (auto& row : term) {
      for (double& x : row) x /= static_cast<double>(k);
    }
    for (std::size_t i = 0; i < kNumStates; ++i) {
      for (std::size_t j = 0; j < kNumStates; ++j) result[i][j] += term[i][j];
    }
  }
  for (int k = 0; k < s; ++k) result = mat4_mul(result, result);
  return result;
}

void jacobi_eigen_symmetric(const Mat4& matrix, Vec4& values, Mat4& vectors) {
  Mat4 a = matrix;
  vectors = mat4_identity();
  constexpr int kMaxSweeps = 64;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < kNumStates; ++p) {
      for (std::size_t q = p + 1; q < kNumStates; ++q) off += a[p][q] * a[p][q];
    }
    if (off < 1e-30) break;
    for (std::size_t p = 0; p < kNumStates; ++p) {
      for (std::size_t q = p + 1; q < kNumStates; ++q) {
        if (std::fabs(a[p][q]) < 1e-300) continue;
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply rotation G(p,q,theta): A <- G^T A G, V <- V G.
        for (std::size_t k = 0; k < kNumStates; ++k) {
          const double akp = a[k][p];
          const double akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < kNumStates; ++k) {
          const double apk = a[p][k];
          const double aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < kNumStates; ++k) {
          const double vkp = vectors[k][p];
          const double vkq = vectors[k][q];
          vectors[k][p] = c * vkp - s * vkq;
          vectors[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }
  for (std::size_t i = 0; i < kNumStates; ++i) values[i] = a[i][i];

  // Sort eigenpairs by descending eigenvalue (selection sort, swap columns).
  for (std::size_t i = 0; i < kNumStates; ++i) {
    std::size_t best = i;
    for (std::size_t j = i + 1; j < kNumStates; ++j) {
      if (values[j] > values[best]) best = j;
    }
    if (best != i) {
      std::swap(values[i], values[best]);
      for (std::size_t k = 0; k < kNumStates; ++k) {
        std::swap(vectors[k][i], vectors[k][best]);
      }
    }
  }
}

void jacobi_eigen_symmetric_n(const std::vector<double>& matrix, int n,
                              std::vector<double>& values,
                              std::vector<double>& vectors) {
  const std::size_t un = static_cast<std::size_t>(n);
  std::vector<double> a = matrix;
  vectors.assign(un * un, 0.0);
  for (std::size_t i = 0; i < un; ++i) vectors[i * un + i] = 1.0;

  auto at = [&](std::vector<double>& m, std::size_t r, std::size_t c) -> double& {
    return m[r * un + c];
  };

  const int max_sweeps = 100;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < un; ++p) {
      for (std::size_t q = p + 1; q < un; ++q) off += at(a, p, q) * at(a, p, q);
    }
    if (off < 1e-26) break;
    for (std::size_t p = 0; p < un; ++p) {
      for (std::size_t q = p + 1; q < un; ++q) {
        if (std::fabs(at(a, p, q)) < 1e-300) continue;
        const double theta = (at(a, q, q) - at(a, p, p)) / (2.0 * at(a, p, q));
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < un; ++k) {
          const double akp = at(a, k, p);
          const double akq = at(a, k, q);
          at(a, k, p) = c * akp - s * akq;
          at(a, k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < un; ++k) {
          const double apk = at(a, p, k);
          const double aqk = at(a, q, k);
          at(a, p, k) = c * apk - s * aqk;
          at(a, q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < un; ++k) {
          const double vkp = at(vectors, k, p);
          const double vkq = at(vectors, k, q);
          at(vectors, k, p) = c * vkp - s * vkq;
          at(vectors, k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  values.resize(un);
  for (std::size_t i = 0; i < un; ++i) values[i] = a[i * un + i];

  // Sort descending, swapping eigenvector columns along.
  for (std::size_t i = 0; i < un; ++i) {
    std::size_t best = i;
    for (std::size_t j = i + 1; j < un; ++j) {
      if (values[j] > values[best]) best = j;
    }
    if (best != i) {
      std::swap(values[i], values[best]);
      for (std::size_t k = 0; k < un; ++k) {
        std::swap(vectors[k * un + i], vectors[k * un + best]);
      }
    }
  }
}

}  // namespace fdml
