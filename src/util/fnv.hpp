// FNV-1a 64-bit hashing, shared by the message-integrity footers
// (comm/integrity.hpp) and the durable-state layer (src/durable/): one
// digest function means a checkpoint frame, a journal record and a network
// payload all fail validation the same way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fdml {

inline constexpr std::uint64_t kFnv1a64OffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1a64Prime = 0x100000001b3ULL;

/// Hashes `size` bytes, continuing from `hash` so digests chain.
inline std::uint64_t fnv1a64(const void* data, std::size_t size,
                             std::uint64_t hash = kFnv1a64OffsetBasis) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnv1a64Prime;
  }
  return hash;
}

inline std::uint64_t fnv1a64(std::string_view text,
                             std::uint64_t hash = kFnv1a64OffsetBasis) {
  return fnv1a64(text.data(), text.size(), hash);
}

/// Chains a 64-bit value (as 8 little-endian bytes) into a digest.
inline std::uint64_t fnv1a64_u64(std::uint64_t value,
                                 std::uint64_t hash = kFnv1a64OffsetBasis) {
  for (int i = 0; i < 8; ++i) {
    hash ^= static_cast<unsigned char>(value >> (8 * i));
    hash *= kFnv1a64Prime;
  }
  return hash;
}

}  // namespace fdml
