// Cache-line/vector-width aligned storage for the kernel layer.
//
// The SIMD likelihood kernels (src/likelihood/kernels.hpp) use aligned
// vector loads over pattern planes, so every CLV / coefficient / scratch
// buffer must start on a 64-byte boundary (one cache line; enough for any
// backend up to AVX-512). AlignedVector keeps the std::vector interface —
// the engine's resize/assign bookkeeping is unchanged — while guaranteeing
// the data() pointer alignment the kernels assume.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace fdml {

inline constexpr std::size_t kKernelAlignment = 64;

/// Minimal C++17 allocator handing out `Align`-byte aligned blocks via the
/// aligned operator new. Equality is stateless: any two instances compare
/// equal, so vectors can swap storage freely.
template <class T, std::size_t Align = kKernelAlignment>
struct AlignedAllocator {
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");
  static_assert(Align >= alignof(T), "alignment below the type's own");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// std::vector whose data() is 64-byte aligned. Value-initialization
/// semantics are unchanged: resize() zero-fills new doubles, which the
/// kernels rely on for the padded pattern tail.
template <class T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Rounds `n` up to a multiple of `block` (the pattern-plane padding used
/// by the SoA CLV layout).
constexpr std::size_t round_up(std::size_t n, std::size_t block) {
  return (n + block - 1) / block * block;
}

}  // namespace fdml
