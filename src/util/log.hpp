// Minimal leveled, thread-safe logger. The parallel roles run on separate
// threads, so lines are serialized under a global mutex. Each line carries a
// monotonic timestamp (shared epoch with the span tracer, util/timer.hpp) and
// the emitting thread's role label; the sink is redirectable so tests can
// assert on log output instead of scraping stderr.
#pragma once

#include <functional>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace fdml {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace detail {
std::mutex& log_mutex();
LogLevel load_log_level();
}  // namespace detail

/// Sets the process-wide minimum level that is emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug" / "info" / "warn" / "error" / "off" (the --log-level
/// spellings); nullopt on anything else.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// Where finished lines go. Called under the log mutex with the formatted
/// line (no trailing newline). Passing nullptr restores the default stderr
/// sink. Returns the previous sink so tests can restore it.
using LogSink = std::function<void(LogLevel, const std::string&)>;
LogSink set_log_sink(LogSink sink);

/// Role label stamped into this thread's lines (e.g. "worker-3"). The span
/// tracer's set_thread_name() forwards here so traces and logs agree.
void set_log_thread_label(std::string label);
const std::string& log_thread_label();

namespace detail {
void emit_log_line(LogLevel level, const std::string& line);
std::string format_log_prefix(LogLevel level, std::string_view component);
}  // namespace detail

/// Stream-style log statement: LogLine(LogLevel::kInfo, "foreman") << ...;
/// Emits on destruction. Format:
///   [info +12.345s worker-3] foreman: message
/// (the thread label is omitted when unset).
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), enabled_(level >= log_level() && level < LogLevel::kOff) {
    if (enabled_) stream_ << detail::format_log_prefix(level, component);
  }

  ~LogLine() {
    if (enabled_) detail::emit_log_line(level_, stream_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

#define FDML_LOG(level, component) ::fdml::LogLine(level, component)
#define FDML_DEBUG(component) FDML_LOG(::fdml::LogLevel::kDebug, component)
#define FDML_INFO(component) FDML_LOG(::fdml::LogLevel::kInfo, component)
#define FDML_WARN(component) FDML_LOG(::fdml::LogLevel::kWarn, component)
#define FDML_ERROR(component) FDML_LOG(::fdml::LogLevel::kError, component)

}  // namespace fdml
