// Minimal leveled, thread-safe logger. The parallel roles run on separate
// threads, so lines are serialized under a global mutex.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace fdml {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace detail {
LogLevel& global_log_level();
std::mutex& log_mutex();
}  // namespace detail

/// Sets the process-wide minimum level that is emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Stream-style log statement: LogLine(LogLevel::kInfo, "foreman") << ...;
/// Emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), enabled_(level >= log_level()) {
    if (enabled_) stream_ << "[" << name(level) << "] " << component << ": ";
  }

  ~LogLine() {
    if (!enabled_) return;
    std::lock_guard lock(detail::log_mutex());
    std::cerr << stream_.str() << "\n";
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
      default: return "?";
    }
  }

  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

#define FDML_LOG(level, component) ::fdml::LogLine(level, component)
#define FDML_DEBUG(component) FDML_LOG(::fdml::LogLevel::kDebug, component)
#define FDML_INFO(component) FDML_LOG(::fdml::LogLevel::kInfo, component)
#define FDML_WARN(component) FDML_LOG(::fdml::LogLevel::kWarn, component)
#define FDML_ERROR(component) FDML_LOG(::fdml::LogLevel::kError, component)

}  // namespace fdml
