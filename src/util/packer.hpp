// Endian-stable binary serialization for the message-passing layer.
// All integers are little-endian fixed width; doubles are IEEE-754 bit
// patterns carried in a u64. Strings and blobs are length-prefixed (u32).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fdml {

class Packer {
 public:
  void put_u8(std::uint8_t v) { buffer_.push_back(v); }

  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

  void put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }

  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  void put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    buffer_.insert(buffer_.end(), s.begin(), s.end());
  }

  void put_f64_vector(const std::vector<double>& v) {
    put_u32(static_cast<std::uint32_t>(v.size()));
    for (double x : v) put_f64(x);
  }

  const std::vector<std::uint8_t>& data() const { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

class Unpacker {
 public:
  explicit Unpacker(const std::vector<std::uint8_t>& data)
      : data_(data.data()), size_(data.size()) {}
  Unpacker(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t get_u8() {
    require(1);
    return data_[pos_++];
  }

  std::uint32_t get_u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t get_u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }

  double get_f64() {
    const std::uint64_t bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool get_bool() { return get_u8() != 0; }

  std::string get_string() {
    const std::uint32_t n = get_u32();
    require(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<double> get_f64_vector() {
    const std::uint32_t n = get_u32();
    // Validate before reserving: a corrupt length prefix (one flipped byte
    // can turn a small count into 0xFFFFFFFF) must throw the truncation
    // error, not attempt a multi-gigabyte allocation.
    require_count(n, 8);
    std::vector<double> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(get_f64());
    return v;
  }

  /// Guards length-prefixed loops: throws unless the remaining buffer can
  /// still hold `n` items of at least `min_bytes_each` encoded bytes. Call
  /// before any n-proportional reserve() so a corrupt count fails as a clean
  /// truncation error instead of an allocation attempt sized by the
  /// corruption.
  void require_count(std::uint32_t n, std::size_t min_bytes_each) const {
    if (static_cast<std::size_t>(n) * min_bytes_each > remaining()) {
      throw std::out_of_range("Unpacker: truncated message (bad length prefix)");
    }
  }

  bool exhausted() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > size_) throw std::out_of_range("Unpacker: truncated message");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace fdml
