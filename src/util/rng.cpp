#include "util/rng.hpp"

#include <cmath>

namespace fdml {

double Rng::exponential(double rate) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::normal() noexcept {
  // Marsaglia polar method; discards the second variate for simplicity.
  for (;;) {
    const double x = uniform(-1.0, 1.0);
    const double y = uniform(-1.0, 1.0);
    const double s = x * x + y * y;
    if (s > 0.0 && s < 1.0) {
      return x * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::gamma(double shape) noexcept {
  if (shape < 1.0) {
    // Ahrens-Dieter boost: Gamma(a) = Gamma(a+1) * U^(1/a).
    const double g = gamma(shape + 1.0);
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return g * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::lognormal_mean_cv(double mean, double cv) noexcept {
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

std::size_t Rng::categorical(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  double pick = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

}  // namespace fdml
