#include "util/simd.hpp"

#include <cstdlib>

namespace fdml::simd {

namespace {

bool probe_cpu(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse2");
#else
      return false;
#endif
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

bool is_compiled(Backend b) {
  for (Backend c : compiled_backends()) {
    if (c == b) return true;
  }
  return false;
}

/// Widest compiled backend the CPU supports; honors FDML_SIMD in the
/// environment (unknown / unavailable values fall back to auto selection).
Backend resolve_auto() {
  if (const char* env = std::getenv("FDML_SIMD")) {
    const std::string name(env);
    for (Backend b : compiled_backends()) {
      if (name == backend_name(b) && cpu_supports(b)) return b;
    }
  }
  Backend best = Backend::kScalar;
  for (Backend b : compiled_backends()) {
    if (cpu_supports(b) && width(b) > width(best)) best = b;
  }
  return best;
}

Backend& active_state() {
  static Backend active = resolve_auto();
  return active;
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
  }
  return "scalar";
}

std::vector<Backend> compiled_backends() {
  std::vector<Backend> backends{Backend::kScalar};
#if defined(FDML_HAVE_SSE2)
  backends.push_back(Backend::kSse2);
#endif
#if defined(FDML_HAVE_AVX2)
  backends.push_back(Backend::kAvx2);
#endif
  return backends;
}

bool cpu_supports(Backend b) { return probe_cpu(b); }

Backend active_backend() { return active_state(); }

bool set_backend(const std::string& name) {
  if (name == "auto") {
    active_state() = resolve_auto();
    return true;
  }
  for (Backend b : compiled_backends()) {
    if (name == backend_name(b)) {
      if (!cpu_supports(b) || !is_compiled(b)) return false;
      active_state() = b;
      return true;
    }
  }
  return false;
}

}  // namespace fdml::simd
