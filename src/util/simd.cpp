#include "util/simd.hpp"

#include <cstdlib>

namespace fdml::simd {

namespace {

bool probe_cpu(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse2");
#else
      return false;
#endif
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Backend::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      // The kernels use 512-bit FP plus the DQ extension (cvtepu8_epi64 and
      // friends are F, but require DQ-era parts in practice; every CPU with
      // one has both). Probe both so a hypothetical F-only part (Knights
      // Landing) falls back to AVX2.
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq");
#else
      return false;
#endif
  }
  return false;
}

bool is_compiled(Backend b) {
  for (Backend c : compiled_backends()) {
    if (c == b) return true;
  }
  return false;
}

struct BackendState {
  Backend active;
  // True when `active` came from FDML_SIMD or set_backend(name) rather than
  // widest-available resolution; the downclock heuristic only demotes
  // auto-resolved AVX-512.
  bool pinned;
};

/// Widest compiled backend the CPU supports; honors FDML_SIMD in the
/// environment (unknown / unavailable values fall back to auto selection).
BackendState resolve_auto() {
  if (const char* env = std::getenv("FDML_SIMD")) {
    const std::string name(env);
    for (Backend b : compiled_backends()) {
      if (name == backend_name(b) && cpu_supports(b)) return {b, true};
    }
  }
  Backend best = Backend::kScalar;
  for (Backend b : compiled_backends()) {
    if (cpu_supports(b) && width(b) > width(best)) best = b;
  }
  return {best, false};
}

BackendState& active_state() {
  static BackendState active = resolve_auto();
  return active;
}

/// Requested tier: FDML_TIER in the environment, else exact. Unknown or
/// uncompiled values fall back to exact.
Tier resolve_tier_auto() {
  if (const char* env = std::getenv("FDML_TIER")) {
    const std::string name(env);
    for (Tier t : compiled_tiers()) {
      if (name == tier_name(t)) return t;
    }
  }
  return Tier::kExact;
}

Tier& tier_state() {
  static Tier active = resolve_tier_auto();
  return active;
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
  }
  return "scalar";
}

std::vector<Backend> compiled_backends() {
  std::vector<Backend> backends{Backend::kScalar};
#if defined(FDML_HAVE_SSE2)
  backends.push_back(Backend::kSse2);
#endif
#if defined(FDML_HAVE_AVX2)
  backends.push_back(Backend::kAvx2);
#endif
#if defined(FDML_HAVE_AVX512)
  backends.push_back(Backend::kAvx512);
#endif
  return backends;
}

bool cpu_supports(Backend b) { return probe_cpu(b); }

Backend active_backend() { return active_state().active; }

bool backend_pinned() { return active_state().pinned; }

bool set_backend(const std::string& name) {
  if (name == "auto") {
    active_state() = resolve_auto();
    return true;
  }
  for (Backend b : compiled_backends()) {
    if (name == backend_name(b)) {
      if (!cpu_supports(b) || !is_compiled(b)) return false;
      active_state() = {b, true};
      return true;
    }
  }
  return false;
}

const char* tier_name(Tier t) {
  return t == Tier::kFast ? "fast" : "exact";
}

std::vector<Tier> compiled_tiers() {
  std::vector<Tier> tiers{Tier::kExact};
#if defined(FDML_HAVE_FAST_TIER)
  tiers.push_back(Tier::kFast);
#endif
  return tiers;
}

Tier active_tier() { return tier_state(); }

bool set_tier(const std::string& name) {
  if (name == "auto") {
    tier_state() = resolve_tier_auto();
    return true;
  }
  for (Tier t : compiled_tiers()) {
    if (name == tier_name(t)) {
      tier_state() = t;
      return true;
    }
  }
  return false;
}

}  // namespace fdml::simd
