// Pseudo-random number generation for fastdnaml++.
//
// fastDNAml used a multiplicative congruential generator and adjusted
// even-valued user seeds so the generator attains its maximum period.  We
// keep that user-facing semantic (see adjust_user_seed) but generate with
// xoshiro256**, seeded through splitmix64, which is fast, has a 2^256-1
// period, and is reproducible across platforms.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace fdml {

/// Replicates fastDNAml's treatment of user-supplied random seeds: an even
/// seed cannot drive a multiplicative congruential generator at full period,
/// so even seeds are nudged to the next odd value. Zero becomes 1.
constexpr std::uint64_t adjust_user_seed(std::uint64_t seed) noexcept {
  if (seed == 0) return 1;
  return (seed % 2 == 0) ? seed + 1 : seed;
}

/// splitmix64: used to expand a single 64-bit seed into xoshiro state.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 1) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = adjust_user_seed(seed);
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0. Uses rejection to stay
  /// unbiased.
  std::uint64_t below(std::uint64_t n) noexcept {
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Standard normal variate (Marsaglia polar method).
  double normal() noexcept;

  /// Normal variate with mean/sd.
  double normal(double mean, double sd) noexcept { return mean + sd * normal(); }

  /// Gamma variate with the given shape, unit scale
  /// (Marsaglia & Tsang 2000, with Ahrens boost for shape < 1).
  double gamma(double shape) noexcept;

  /// Lognormal variate parameterised by the mean/cv of the *result*.
  double lognormal_mean_cv(double mean, double cv) noexcept;

  /// Samples an index in [0, weights.size()) proportional to weights.
  std::size_t categorical(const std::vector<double>& weights) noexcept;

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Forks an independent stream (hash-mixed), for per-worker RNGs.
  Rng fork() noexcept {
    std::uint64_t child_seed = (*this)() | 1ULL;
    return Rng(child_seed);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace fdml
