// Tiny command-line option parser for the example and bench executables.
// Accepts --key=value, --key value, and --flag forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fdml {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const { return options_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  /// Comma-separated int list, e.g. --procs=4,8,16.
  std::vector<std::int64_t> get_int_list(const std::string& key,
                                         std::vector<std::int64_t> fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace fdml
