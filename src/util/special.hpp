// Special functions used by the rate-heterogeneity model (discrete gamma).
#pragma once

namespace fdml {

/// Regularized lower incomplete gamma function P(a, x) = γ(a,x) / Γ(a).
/// Series expansion for x < a+1, continued fraction otherwise.
double gamma_p(double a, double x);

/// Inverse of gamma_p in x: returns x such that P(a, x) = p, for p in (0,1).
/// Wilson–Hilferty initial guess refined by Newton iterations.
double gamma_p_inverse(double a, double p);

/// Quantile of the Gamma(shape, scale) distribution.
double gamma_quantile(double p, double shape, double scale);

/// Quantile of the chi-square distribution with `df` degrees of freedom.
double chi_square_quantile(double p, double df);

/// Natural log of the double factorial (2n-5)!! — the count of unrooted
/// bifurcating tree topologies on n taxa has this form.
double log_double_factorial(long long k);

}  // namespace fdml
