#include "util/lognumber.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

namespace fdml {

std::string LogNumber::to_string(int significant_digits) const {
  if (std::isinf(log_value_) && log_value_ < 0) return "0";
  const double l10 = log10();
  double exponent = std::floor(l10);
  double mantissa = std::pow(10.0, l10 - exponent);
  // Guard against mantissa rounding to 10 when formatted.
  const double rounding = 0.5 * std::pow(10.0, -(significant_digits - 1));
  if (mantissa + rounding >= 10.0) {
    mantissa /= 10.0;
    exponent += 1.0;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fe%+03lld", significant_digits - 1,
                mantissa, static_cast<long long>(exponent));
  return buf;
}

}  // namespace fdml
