// Wall-clock and CPU timers used by the monitor instrumentation and the
// trace recorder.
#pragma once

#include <chrono>
#include <cstdint>
#include <ctime>

namespace fdml {

/// Nanoseconds since the first call in this process. The logger and the
/// span tracer both stamp with this so their timelines line up; the epoch
/// is latched once (thread-safe static init) on first use.
inline std::uint64_t monotonic_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch)
          .count());
}

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (used to cost individual tree evaluations
/// for the scaling-trace recorder; wall time would be polluted by the other
/// in-process roles sharing the core).
class CpuTimer {
 public:
  CpuTimer() : start_(now()) {}

  void reset() { start_ = now(); }

  double seconds() const { return now() - start_; }

 private:
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }

  double start_;
};

}  // namespace fdml
