// Wall-clock and CPU timers used by the monitor instrumentation and the
// trace recorder.
#pragma once

#include <chrono>
#include <ctime>

namespace fdml {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (used to cost individual tree evaluations
/// for the scaling-trace recorder; wall time would be polluted by the other
/// in-process roles sharing the core).
class CpuTimer {
 public:
  CpuTimer() : start_(now()) {}

  void reset() { start_ = now(); }

  double seconds() const { return now() - start_; }

 private:
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }

  double start_;
};

}  // namespace fdml
