// Small dense linear algebra for 4-state substitution models.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace fdml {

inline constexpr std::size_t kNumStates = 4;

using Vec4 = std::array<double, kNumStates>;
using Mat4 = std::array<std::array<double, kNumStates>, kNumStates>;

/// Returns the 4x4 identity matrix.
Mat4 mat4_identity();

/// Matrix product a * b.
Mat4 mat4_mul(const Mat4& a, const Mat4& b);

/// Matrix-vector product a * v.
Vec4 mat4_mul_vec(const Mat4& a, const Vec4& v);

/// Transpose.
Mat4 mat4_transpose(const Mat4& a);

/// Max-abs entry of (a - b); convergence / test helper.
double mat4_max_abs_diff(const Mat4& a, const Mat4& b);

/// Dense matrix exponential via scaling-and-squaring with a Taylor core.
/// Used only as a test oracle against the eigendecomposition path.
Mat4 mat4_expm(const Mat4& a);

/// Jacobi eigensolver for a symmetric 4x4 matrix.
/// On return, `values[i]` is the i-th eigenvalue and column i of `vectors`
/// is the corresponding unit eigenvector (vectors is orthogonal).
/// Eigenvalues are sorted in descending order.
void jacobi_eigen_symmetric(const Mat4& matrix, Vec4& values, Mat4& vectors);

/// Jacobi eigensolver for a symmetric n x n matrix in row-major storage
/// (used by the N-state models: 5-state DNA+gap, 20-state protein).
/// `matrix` is n*n row-major and is left unmodified; on return `values` has
/// n eigenvalues (descending) and `vectors` is n*n row-major with column i
/// the i-th unit eigenvector.
void jacobi_eigen_symmetric_n(const std::vector<double>& matrix, int n,
                              std::vector<double>& values,
                              std::vector<double>& vectors);

}  // namespace fdml
