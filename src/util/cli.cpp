#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>

namespace fdml {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "true";
    }
  }
}

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::int64_t> CliArgs::get_int_list(
    const std::string& key, std::vector<std::int64_t> fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::strtoll(item.c_str(), nullptr, 10));
  }
  return out;
}

}  // namespace fdml
