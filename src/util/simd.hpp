// Width-generic SIMD vector abstraction and backend selection.
//
// `Vec<double, W>` wraps W-lane double arithmetic behind one interface so a
// kernel written once against it compiles to scalar code (W = 1), SSE2
// (W = 2) or AVX2 (W = 4) depending on the translation unit's target flags.
// The per-backend kernel TUs (src/likelihood/kernels_*.cpp) instantiate the
// shared kernel bodies at their width; everything else in the tree stays
// ISA-agnostic and picks an implementation through the runtime dispatch
// table below.
//
// Determinism contract: kernels use madd() — an UNFUSED multiply-then-add —
// never hardware FMA, and the kernel TUs are compiled with
// -ffp-contract=off. Each pattern's arithmetic is lane-local and performed
// in the same order at every width, so all backends produce bit-identical
// per-pattern results (the backend-parity test asserts a 2-ulp bound but
// exact equality is the design point). A backend may only change *which*
// instructions run, never the answer.
//
// Backend state: active_backend() starts at the widest compiled backend the
// CPU supports (CPUID probe), overridable by the FDML_SIMD environment
// variable or set_backend("scalar|sse2|avx2|auto"). Compile-time
// availability is governed by the FDML_SIMD CMake option, which defines
// FDML_HAVE_SSE2 / FDML_HAVE_AVX2 project-wide and adds -msse2 / -mavx2 to
// the matching kernel TUs only — the rest of the build keeps the default
// architecture so a binary built with FDML_SIMD=auto still runs (on the
// scalar backend) on a CPU without AVX2.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX__) || defined(__AVX2__)
#include <immintrin.h>
#endif

namespace fdml::simd {

enum class Backend { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Lane width of a backend (doubles per vector).
constexpr int width(Backend b) {
  return b == Backend::kAvx2 ? 4 : (b == Backend::kSse2 ? 2 : 1);
}

const char* backend_name(Backend b);

/// Backends this binary was built with (FDML_SIMD), scalar first.
std::vector<Backend> compiled_backends();

/// True when the running CPU can execute `b` (CPUID probe; scalar: always).
bool cpu_supports(Backend b);

/// The backend new LikelihoodEngines will use. Resolution order: an earlier
/// set_backend() call, else the FDML_SIMD environment variable, else the
/// widest compiled backend the CPU supports.
Backend active_backend();

/// Forces the active backend by name ("scalar", "sse2", "avx2", or "auto"
/// to return to automatic selection). Returns false — and leaves the state
/// unchanged — if the name is unknown, the backend was not compiled in, or
/// the CPU lacks it. Affects engines constructed afterwards; thread-safe
/// only at init/test scope (not meant to be raced against engine work).
bool set_backend(const std::string& name);

// ---------------------------------------------------------------------------
// Vec<double, W>: the operations the likelihood kernels need, nothing more.
// The generic template is straight scalar code at any W (used at W = 1; it
// is also the reference semantics for the specializations below).
// ---------------------------------------------------------------------------

template <class T, int W>
struct Vec {
  T lane[W];

  static Vec load(const T* p) {
    Vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = p[i];
    return v;
  }
  void store(T* p) const {
    for (int i = 0; i < W; ++i) p[i] = lane[i];
  }
  static Vec broadcast(T x) {
    Vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = x;
    return v;
  }
  static Vec zero() { return broadcast(T(0)); }
  /// v.lane[i] = table[idx[i]] — the 16-code tip-table lookup.
  static Vec gather(const T* table, const unsigned char* idx) {
    Vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = table[idx[i]];
    return v;
  }

  friend Vec operator+(Vec a, Vec b) {
    Vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = a.lane[i] + b.lane[i];
    return v;
  }
  friend Vec operator*(Vec a, Vec b) {
    Vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = a.lane[i] * b.lane[i];
    return v;
  }
  static Vec max(Vec a, Vec b) {
    Vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
    return v;
  }
  /// Unfused multiply-add: a * b + c evaluated as separate rounding steps
  /// (see the determinism contract above).
  static Vec madd(Vec a, Vec b, Vec c) { return a * b + c; }
  /// Bitmask of lanes where a < b (lane i -> bit i), the movemask idiom the
  /// vectorized underflow check uses.
  static int lt_mask(Vec a, Vec b) {
    int m = 0;
    for (int i = 0; i < W; ++i) m |= (a.lane[i] < b.lane[i]) ? (1 << i) : 0;
    return m;
  }
};

#if defined(__SSE2__)
template <>
struct Vec<double, 2> {
  __m128d v;

  static Vec load(const double* p) { return {_mm_load_pd(p)}; }
  void store(double* p) const { _mm_store_pd(p, v); }
  static Vec broadcast(double x) { return {_mm_set1_pd(x)}; }
  static Vec zero() { return {_mm_setzero_pd()}; }
  static Vec gather(const double* table, const unsigned char* idx) {
    return {_mm_set_pd(table[idx[1]], table[idx[0]])};
  }

  friend Vec operator+(Vec a, Vec b) { return {_mm_add_pd(a.v, b.v)}; }
  friend Vec operator*(Vec a, Vec b) { return {_mm_mul_pd(a.v, b.v)}; }
  static Vec max(Vec a, Vec b) { return {_mm_max_pd(a.v, b.v)}; }
  static Vec madd(Vec a, Vec b, Vec c) {
    return {_mm_add_pd(_mm_mul_pd(a.v, b.v), c.v)};
  }
  static int lt_mask(Vec a, Vec b) {
    return _mm_movemask_pd(_mm_cmplt_pd(a.v, b.v));
  }
};
#endif  // __SSE2__

#if defined(__AVX2__)
template <>
struct Vec<double, 4> {
  __m256d v;

  static Vec load(const double* p) { return {_mm256_load_pd(p)}; }
  void store(double* p) const { _mm256_store_pd(p, v); }
  static Vec broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static Vec zero() { return {_mm256_setzero_pd()}; }
  static Vec gather(const double* table, const unsigned char* idx) {
    const __m128i lanes =
        _mm_set_epi32(idx[3], idx[2], idx[1], idx[0]);
    // Masked form with an all-ones mask: same instruction, but avoids the
    // _mm256_undefined_pd() source GCC warns about in the plain intrinsic.
    const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    return {_mm256_mask_i32gather_pd(_mm256_setzero_pd(), table, lanes, ones,
                                     sizeof(double))};
  }

  friend Vec operator+(Vec a, Vec b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend Vec operator*(Vec a, Vec b) { return {_mm256_mul_pd(a.v, b.v)}; }
  static Vec max(Vec a, Vec b) { return {_mm256_max_pd(a.v, b.v)}; }
  static Vec madd(Vec a, Vec b, Vec c) {
    // Intentionally mul + add, not _mm256_fmadd_pd: fused rounding would
    // break cross-backend bit equality.
    return {_mm256_add_pd(_mm256_mul_pd(a.v, b.v), c.v)};
  }
  static int lt_mask(Vec a, Vec b) {
    return _mm256_movemask_pd(_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ));
  }
};
#endif  // __AVX2__

}  // namespace fdml::simd
