// Width-generic SIMD vector abstraction and backend selection.
//
// `Vec<double, W>` wraps W-lane double arithmetic behind one interface so a
// kernel written once against it compiles to scalar code (W = 1), SSE2
// (W = 2), AVX2 (W = 4) or AVX-512 (W = 8) depending on the translation
// unit's target flags. The per-backend kernel TUs
// (src/likelihood/kernels_*.cpp) instantiate the shared kernel bodies at
// their width; everything else in the tree stays ISA-agnostic and picks an
// implementation through the runtime dispatch table below.
//
// Determinism contract (exact tier): kernels use madd() — an UNFUSED
// multiply-then-add — never hardware FMA, and the kernel TUs are compiled
// with -ffp-contract=off. Each pattern's arithmetic is lane-local and
// performed in the same order at every width, so all backends produce
// bit-identical per-pattern results (the backend-parity test asserts a
// 2-ulp bound but exact equality is the design point). A backend may only
// change *which* instructions run, never the answer.
//
// Fast-math tier: when the build enables FDML_FAST_MATH, a second set of
// kernel TUs is compiled with hardware FMA (-mfma, -ffp-contract=fast) and
// registered in the dispatch table under Tier::kFast. The fast tier trades
// the cross-backend bit-equality contract for fused rounding (one rounding
// step per multiply-add instead of two); its results stay within ~1e-12
// relative of the exact tier but are NOT bit-identical across backends,
// which is why it is opt-in (set_tier / FDML_TIER=fast) and never the
// default. Tier state lives here next to backend state; which (backend,
// tier) pairs actually have compiled tables is the kernel dispatch layer's
// business (likelihood/kernels.hpp).
//
// Backend state: active_backend() starts at the widest compiled backend the
// CPU supports (CPUID probe), overridable by the FDML_SIMD environment
// variable or set_backend("scalar|sse2|avx2|avx512|auto"). Compile-time
// availability is governed by the FDML_SIMD CMake option, which defines
// FDML_HAVE_SSE2 / FDML_HAVE_AVX2 / FDML_HAVE_AVX512 project-wide and adds
// -msse2 / -mavx2 / -mavx512f… to the matching kernel TUs only — the rest
// of the build keeps the default architecture so a binary built with
// FDML_SIMD=auto still runs (on the scalar backend) on a CPU without AVX2.
//
// AVX-512 caveat: on many client and server parts, running 512-bit FP
// instructions drops the core's clock ("AVX-512 downclocking"), which can
// make the 8-wide backend a net loss on small workloads. auto-resolution
// therefore reports AVX-512 as the widest backend, but the kernel dispatch
// layer prefers AVX2 tables for engines whose pattern count is below a
// threshold unless the user pinned the backend explicitly — see
// kernel_table_for_patterns() in likelihood/kernels.hpp. backend_pinned()
// tells that layer whether the current selection was forced.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX__) || defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace fdml::simd {

enum class Backend { kScalar = 0, kSse2 = 1, kAvx2 = 2, kAvx512 = 3 };

/// Lane width of a backend (doubles per vector).
constexpr int width(Backend b) {
  return b == Backend::kAvx512
             ? 8
             : (b == Backend::kAvx2 ? 4 : (b == Backend::kSse2 ? 2 : 1));
}

const char* backend_name(Backend b);

/// Backends this binary was built with (FDML_SIMD), scalar first.
std::vector<Backend> compiled_backends();

/// True when the running CPU can execute `b` (CPUID probe; scalar: always).
bool cpu_supports(Backend b);

/// The backend new LikelihoodEngines will use. Resolution order: an earlier
/// set_backend() call, else the FDML_SIMD environment variable, else the
/// widest compiled backend the CPU supports.
Backend active_backend();

/// Forces the active backend by name ("scalar", "sse2", "avx2", "avx512",
/// or "auto" to return to automatic selection). Returns false — and leaves
/// the state unchanged — if the name is unknown, the backend was not
/// compiled in, or the CPU lacks it. Affects engines constructed
/// afterwards; thread-safe only at init/test scope (not meant to be raced
/// against engine work).
bool set_backend(const std::string& name);

/// True when the active backend was pinned by set_backend() or FDML_SIMD
/// rather than resolved automatically. A pinned backend is honored as-is;
/// an auto-resolved AVX-512 may be demoted to AVX2 for small pattern
/// counts (downclock heuristic in the kernel dispatch layer).
bool backend_pinned();

// ---------------------------------------------------------------------------
// Numeric tier: exact (default, bit-reproducible across backends) or fast
// (hardware FMA, opt-in). Mirrors the backend state machinery.
// ---------------------------------------------------------------------------

enum class Tier { kExact = 0, kFast = 1 };

const char* tier_name(Tier t);

/// Tiers this binary was built with. Exact is always present; fast requires
/// configuring with -DFDML_FAST_MATH=ON.
std::vector<Tier> compiled_tiers();

/// The tier new LikelihoodEngines will request. Resolution order: an
/// earlier set_tier() call, else the FDML_TIER environment variable, else
/// exact. Note the *requested* tier: a backend with no fast table compiled
/// falls back to its exact table (see kernels.hpp).
Tier active_tier();

/// Forces the tier by name ("exact", "fast", or "auto" to return to
/// env/default resolution). Returns false — and leaves the state unchanged —
/// if the name is unknown or the tier was not compiled in.
bool set_tier(const std::string& name);

// ---------------------------------------------------------------------------
// Vec<double, W>: the operations the likelihood kernels need, nothing more.
// The generic template is straight scalar code at any W (used at W = 1; it
// is also the reference semantics for the specializations below).
// ---------------------------------------------------------------------------

template <class T, int W>
struct Vec {
  T lane[W];

  static Vec load(const T* p) {
    Vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = p[i];
    return v;
  }
  void store(T* p) const {
    for (int i = 0; i < W; ++i) p[i] = lane[i];
  }
  static Vec broadcast(T x) {
    Vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = x;
    return v;
  }
  static Vec zero() { return broadcast(T(0)); }
  /// v.lane[i] = table[idx[i]] — the 16-code tip-table lookup.
  static Vec gather(const T* table, const unsigned char* idx) {
    Vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = table[idx[i]];
    return v;
  }
  /// Transposed tip lookup: one code-major table row (tab4[code * 4 + s])
  /// holds all four states of a code, so each pattern needs a single
  /// contiguous 4-wide load instead of four strided gathers; the
  /// specializations transpose the loaded rows back to state-major in
  /// registers. out[s].lane[i] = tab4[idx[i] * 4 + s].
  static void gather4(const T* tab4, const unsigned char* idx, Vec out[4]) {
    for (int s = 0; s < 4; ++s) {
      for (int i = 0; i < W; ++i) out[s].lane[i] = tab4[idx[i] * 4 + s];
    }
  }

  friend Vec operator+(Vec a, Vec b) {
    Vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = a.lane[i] + b.lane[i];
    return v;
  }
  friend Vec operator*(Vec a, Vec b) {
    Vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = a.lane[i] * b.lane[i];
    return v;
  }
  static Vec max(Vec a, Vec b) {
    Vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
    return v;
  }
  /// Unfused multiply-add: a * b + c evaluated as separate rounding steps
  /// (see the determinism contract above).
  static Vec madd(Vec a, Vec b, Vec c) { return a * b + c; }
  /// Fused multiply-add: a * b + c with a single rounding step. Only the
  /// fast tier instantiates this; the exact tier never calls it.
  static Vec fmadd(Vec a, Vec b, Vec c) {
    Vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = std::fma(a.lane[i], b.lane[i], c.lane[i]);
    return v;
  }
  /// Bitmask of lanes where a < b (lane i -> bit i), the movemask idiom the
  /// vectorized underflow check uses.
  static int lt_mask(Vec a, Vec b) {
    int m = 0;
    for (int i = 0; i < W; ++i) m |= (a.lane[i] < b.lane[i]) ? (1 << i) : 0;
    return m;
  }
};

#if defined(__SSE2__)
template <>
struct Vec<double, 2> {
  __m128d v;

  static Vec load(const double* p) { return {_mm_load_pd(p)}; }
  void store(double* p) const { _mm_store_pd(p, v); }
  static Vec broadcast(double x) { return {_mm_set1_pd(x)}; }
  static Vec zero() { return {_mm_setzero_pd()}; }
  static Vec gather(const double* table, const unsigned char* idx) {
    return {_mm_set_pd(table[idx[1]], table[idx[0]])};
  }
  static void gather4(const double* tab4, const unsigned char* idx,
                      Vec out[4]) {
    // Two aligned 16-byte loads per pattern (the code's four states are
    // contiguous in the code-major table), then a 2x2 transpose per state
    // pair — fewer load-port trips than four per-state set_pd gathers.
    const __m128d p0_01 = _mm_load_pd(tab4 + idx[0] * 4);
    const __m128d p0_23 = _mm_load_pd(tab4 + idx[0] * 4 + 2);
    const __m128d p1_01 = _mm_load_pd(tab4 + idx[1] * 4);
    const __m128d p1_23 = _mm_load_pd(tab4 + idx[1] * 4 + 2);
    out[0] = {_mm_unpacklo_pd(p0_01, p1_01)};
    out[1] = {_mm_unpackhi_pd(p0_01, p1_01)};
    out[2] = {_mm_unpacklo_pd(p0_23, p1_23)};
    out[3] = {_mm_unpackhi_pd(p0_23, p1_23)};
  }

  friend Vec operator+(Vec a, Vec b) { return {_mm_add_pd(a.v, b.v)}; }
  friend Vec operator*(Vec a, Vec b) { return {_mm_mul_pd(a.v, b.v)}; }
  static Vec max(Vec a, Vec b) { return {_mm_max_pd(a.v, b.v)}; }
  static Vec madd(Vec a, Vec b, Vec c) {
    return {_mm_add_pd(_mm_mul_pd(a.v, b.v), c.v)};
  }
  static Vec fmadd(Vec a, Vec b, Vec c) {
#if defined(__FMA__)
    return {_mm_fmadd_pd(a.v, b.v, c.v)};
#else
    return madd(a, b, c);
#endif
  }
  static int lt_mask(Vec a, Vec b) {
    return _mm_movemask_pd(_mm_cmplt_pd(a.v, b.v));
  }
};
#endif  // __SSE2__

#if defined(__AVX2__)
template <>
struct Vec<double, 4> {
  __m256d v;

  static Vec load(const double* p) { return {_mm256_load_pd(p)}; }
  void store(double* p) const { _mm256_store_pd(p, v); }
  static Vec broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static Vec zero() { return {_mm256_setzero_pd()}; }
  static Vec gather(const double* table, const unsigned char* idx) {
    // Four scalar loads assembled with set_pd, NOT _mm256_i32gather_pd: the
    // hardware gather serializes in the load ports and lost to SSE2's
    // set_pd pair on this kernel (clv_combine_tip 1.20x vs 1.29x in the
    // tracked bench). The 16-entry tip table is L1-resident, so plain
    // loads win.
    return {_mm256_set_pd(table[idx[3]], table[idx[2]], table[idx[1]],
                          table[idx[0]])};
  }
  static void gather4(const double* tab4, const unsigned char* idx,
                      Vec out[4]) {
    // One aligned 32-byte load per pattern pulls all four states of its
    // code at once (code-major table), and an in-register 4x4 transpose
    // turns the rows state-major: 4 loads + 8 shuffles for what the
    // per-state gather spends 16 loads + 12 inserts on. This is what
    // recovered clv_combine_tip on AVX2 (the tracked bench had it *slower*
    // than SSE2 with either hardware gathers or set_pd).
    const __m256d p0 = _mm256_load_pd(tab4 + idx[0] * 4);
    const __m256d p1 = _mm256_load_pd(tab4 + idx[1] * 4);
    const __m256d p2 = _mm256_load_pd(tab4 + idx[2] * 4);
    const __m256d p3 = _mm256_load_pd(tab4 + idx[3] * 4);
    const __m256d lo01 = _mm256_unpacklo_pd(p0, p1);  // s0: p0 p1 | s2: p0 p1
    const __m256d hi01 = _mm256_unpackhi_pd(p0, p1);  // s1: p0 p1 | s3: p0 p1
    const __m256d lo23 = _mm256_unpacklo_pd(p2, p3);
    const __m256d hi23 = _mm256_unpackhi_pd(p2, p3);
    out[0] = {_mm256_permute2f128_pd(lo01, lo23, 0x20)};
    out[1] = {_mm256_permute2f128_pd(hi01, hi23, 0x20)};
    out[2] = {_mm256_permute2f128_pd(lo01, lo23, 0x31)};
    out[3] = {_mm256_permute2f128_pd(hi01, hi23, 0x31)};
  }

  friend Vec operator+(Vec a, Vec b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend Vec operator*(Vec a, Vec b) { return {_mm256_mul_pd(a.v, b.v)}; }
  static Vec max(Vec a, Vec b) { return {_mm256_max_pd(a.v, b.v)}; }
  static Vec madd(Vec a, Vec b, Vec c) {
    // Intentionally mul + add, not _mm256_fmadd_pd: fused rounding would
    // break cross-backend bit equality.
    return {_mm256_add_pd(_mm256_mul_pd(a.v, b.v), c.v)};
  }
  static Vec fmadd(Vec a, Vec b, Vec c) {
#if defined(__FMA__)
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
#else
    return madd(a, b, c);
#endif
  }
  static int lt_mask(Vec a, Vec b) {
    return _mm256_movemask_pd(_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ));
  }
};
#endif  // __AVX2__

#if defined(__AVX512F__)
template <>
struct Vec<double, 8> {
  __m512d v;

  static Vec load(const double* p) { return {_mm512_load_pd(p)}; }
  void store(double* p) const { _mm512_store_pd(p, v); }
  static Vec broadcast(double x) { return {_mm512_set1_pd(x)}; }
  static Vec zero() { return {_mm512_setzero_pd()}; }
  static Vec gather(const double* table, const unsigned char* idx) {
    // The tip table row is exactly 16 doubles, which fits in two zmm
    // registers: load both halves and select with a single two-source
    // permute instead of a hardware gather (same rationale as the AVX2
    // specialization — the table is L1-resident and vpermi2pd is cheap).
    const __m512d lo = _mm512_loadu_pd(table);
    const __m512d hi = _mm512_loadu_pd(table + 8);
    std::uint64_t packed;
    std::memcpy(&packed, idx, 8);
    // maskz_cvtepu8_epi64 rather than the plain form: the unmasked
    // intrinsic pads with _mm512_undefined_epi32(), whose `__Y = __Y`
    // body trips GCC's -Wmaybe-uninitialized at every inlined use.
    const __m512i sel = _mm512_maskz_cvtepu8_epi64(
        static_cast<__mmask8>(-1),
        _mm_cvtsi64_si128(static_cast<long long>(packed)));
    return {_mm512_permutex2var_pd(lo, sel, hi)};
  }

  friend Vec operator+(Vec a, Vec b) { return {_mm512_add_pd(a.v, b.v)}; }
  friend Vec operator*(Vec a, Vec b) { return {_mm512_mul_pd(a.v, b.v)}; }
  static Vec max(Vec a, Vec b) {
    // maskz form for the same -Wmaybe-uninitialized reason as gather's
    // cvtepu8 (the plain _mm512_max_pd pads with undefined).
    return {_mm512_maskz_max_pd(static_cast<__mmask8>(-1), a.v, b.v)};
  }
  static Vec madd(Vec a, Vec b, Vec c) {
    // Separate mul + add, same as every exact-tier backend. AVX-512 has no
    // non-fused 512-bit multiply-add, so this is two instructions; the
    // fast tier gets the fused form below.
    return {_mm512_add_pd(_mm512_mul_pd(a.v, b.v), c.v)};
  }
  static Vec fmadd(Vec a, Vec b, Vec c) {
    return {_mm512_fmadd_pd(a.v, b.v, c.v)};
  }
  static int lt_mask(Vec a, Vec b) {
    return static_cast<int>(_mm512_cmp_pd_mask(a.v, b.v, _CMP_LT_OQ));
  }
};
#endif  // __AVX512F__

}  // namespace fdml::simd
