// Blocking MPSC/MPMC channel with timeout receive, used by the in-process
// thread transport and the foreman's work/ready queues.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace fdml {

template <typename T>
class Channel {
 public:
  /// Enqueues an item; wakes one waiting receiver. Returns false if the
  /// channel has been closed.
  bool send(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the channel is closed and drained.
  std::optional<T> recv() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    return pop_locked();
  }

  /// Blocks up to `timeout`; nullopt on timeout or closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> recv_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    cv_.wait_for(lock, timeout, [&] { return !queue_.empty() || closed_; });
    return pop_locked();
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  /// Closes the channel: further sends fail, receivers drain then get
  /// nullopt.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  std::optional<T> pop_locked() {
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace fdml
