// Experiment: section 3.2's open question — Ceron et al.'s parallel DNAml
// "performs speculative calculations based on the relatively low
// probability of a local rearrangement improving the likelihood ... We have
// not studied the runtime behavior of our implementation ... to see if such
// a feature would enhance the scalability of the parallel version of
// fastDNAml. We plan to do so." This bench is that study, on the
// discrete-event model: barriers after rearrangement rounds are crossed
// speculatively; improving rounds waste the speculative work.
#include <cstdio>

#include "fdml.hpp"

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);
  const int taxa = static_cast<int>(args.get_int("taxa", 50));
  const std::size_t sites = static_cast<std::size_t>(args.get_int("sites", 1858));
  const double slowdown = args.get_double("slowdown", 30.0);

  const Alignment sample = make_paper_like_dataset(16, 250, 7);
  const PatternAlignment sample_data(sample);
  const SubstModel model =
      SubstModel::f84_from_tstv(sample_data.base_frequencies(), 2.0);
  const WorkloadModel workload =
      calibrate_workload(sample_data, model, RateModel::uniform());

  std::printf("Speculative dispatch across rearrangement barriers "
              "(%d taxa x %zu sites)\n\n", taxa, sites);
  for (int cross : {1, 5}) {
    Rng rng(42);
    SearchTrace trace = synthesize_trace(taxa, sites, cross, workload, rng);
    trace.scale_costs(slowdown);
    std::printf("k=%d   (%zu rounds, %zu tasks)\n", cross, trace.rounds.size(),
                trace.total_tasks());
    std::printf("%11s %12s %12s %9s %12s %9s\n", "processors", "normal",
                "speculative", "gain", "speculated", "wasted");
    for (std::int64_t p : args.get_int_list("procs", {8, 16, 32, 64})) {
      const SimClusterConfig config = sp_era_config(static_cast<int>(p), slowdown);
      const double normal = simulate_trace(trace, config).wall_seconds;
      const SpeculativeResult spec = simulate_trace_speculative(trace, config);
      std::printf("%11lld %11.0fs %11.0fs %8.1f%% %12zu %9zu\n",
                  static_cast<long long>(p), normal, spec.sim.wall_seconds,
                  100.0 * (normal - spec.sim.wall_seconds) / normal,
                  spec.speculated_rounds, spec.wasted_speculations);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: modest gains, growing with processor count "
              "(more idle tail\nto fill) and larger at k=1 (narrow rounds, "
              "many barriers).\n");
  return 0;
}
