// Experiment: section 3.2's prediction — "the scalability will likely fall
// off at between 100 and 200 processors, since the number of processors
// will equal or exceed the number of trees analyzed in the taxon addition
// step for much of the execution of the program."
//
// Method: simulate the 150-taxon workload across 16..512 processors and
// report where marginal speedup collapses. Insertion rounds have at most
// 2n-5 = 295 tasks (and far fewer for most of the run), so worker counts
// beyond the round width idle at every barrier.
#include <cstdio>

#include "fdml.hpp"

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);
  const int taxa = static_cast<int>(args.get_int("taxa", 150));
  const std::size_t sites = static_cast<std::size_t>(args.get_int("sites", 1269));
  const int cross = static_cast<int>(args.get_int("cross", 1));
  const double slowdown = args.get_double("slowdown", 30.0);

  const Alignment sample = make_paper_like_dataset(16, 250, 7);
  const PatternAlignment sample_data(sample);
  const SubstModel model =
      SubstModel::f84_from_tstv(sample_data.base_frequencies(), 2.0);
  const WorkloadModel workload =
      calibrate_workload(sample_data, model, RateModel::uniform());

  Rng rng(3);
  SearchTrace trace = synthesize_trace(taxa, sites, cross, workload, rng);
  trace.scale_costs(slowdown);

  // Width statistics of the parallel rounds.
  std::size_t max_width = 0;
  double width_sum = 0.0;
  std::size_t width_count = 0;
  for (const auto& round : trace.rounds) {
    max_width = std::max(max_width, round.task_cpu_seconds.size());
    width_sum += static_cast<double>(round.task_cpu_seconds.size());
    ++width_count;
  }
  std::printf("Workload: %d taxa x %zu sites, k=%d; %zu rounds, mean width "
              "%.1f tasks, max width %zu\n\n", taxa, sites, cross,
              trace.rounds.size(), width_sum / width_count, max_width);

  std::printf("%11s %9s %9s %13s %13s\n", "processors", "workers", "speedup",
              "utilization", "marginal");
  double previous_speedup = 0.0;
  int previous_p = 1;
  for (std::int64_t p :
       args.get_int_list("procs", {16, 32, 64, 96, 128, 160, 192, 256, 384, 512})) {
    SimClusterConfig config = sp_era_config(static_cast<int>(p), slowdown);
    const SimResult r = simulate_trace(trace, config);
    const double speedup = simulated_speedup(trace, config);
    // Marginal speedup per added processor since the previous row.
    const double marginal =
        (speedup - previous_speedup) / static_cast<double>(p - previous_p);
    std::printf("%11lld %9d %9.2f %12.0f%% %13.3f\n", static_cast<long long>(p),
                config.workers(), speedup, 100.0 * r.worker_utilization,
                previous_speedup > 0.0 ? marginal : 0.0);
    previous_speedup = speedup;
    previous_p = static_cast<int>(p);
  }
  std::printf("\nExpected shape: marginal gain collapses in the 100-200 "
              "processor range as workers\nexceed the task width of most "
              "rounds (the paper's falloff prediction).\n");
  return 0;
}
