// Experiment: section 3.2's discussion — "why not simply run a large number
// of serial jobs and achieve in this manner essentially perfect
// scalability, rather than parallelizing the analysis of different trees
// within a single random ordering of taxa?" The paper's answer: the
// practicing biologist benefits from seeing some results relatively
// quickly, and a single serial ordering of the large datasets takes days.
//
// Method: schedule the paper's full study (many random orderings) on a
// P-processor machine two ways and compare makespan and time-to-first-tree:
//   A. intra-run parallelism: orderings run one after another, each using
//      the whole machine (the fastDNAml approach);
//   B. job-level parallelism: independent serial orderings packed onto
//      P processors (perfect scaling, but the first tree takes a full
//      serial runtime).
#include <algorithm>
#include <cstdio>
#include <queue>
#include <vector>

#include "fdml.hpp"

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);
  const int taxa = static_cast<int>(args.get_int("taxa", 150));
  const std::size_t sites = static_cast<std::size_t>(args.get_int("sites", 1269));
  const int cross = static_cast<int>(args.get_int("cross", 1));
  const int orderings = static_cast<int>(args.get_int("orderings", 200));
  const int processors = static_cast<int>(args.get_int("processors", 64));
  const double slowdown = args.get_double("slowdown", 30.0);

  const Alignment sample = make_paper_like_dataset(16, 250, 7);
  const PatternAlignment sample_data(sample);
  const SubstModel model =
      SubstModel::f84_from_tstv(sample_data.base_frequencies(), 2.0);
  const WorkloadModel workload =
      calibrate_workload(sample_data, model, RateModel::uniform());

  // Per-ordering serial and parallel runtimes (orderings differ slightly in
  // work, like the paper's ten randomizations did).
  std::vector<double> serial_times;
  std::vector<double> parallel_times;
  const int distinct = std::min(orderings, 8);
  for (int k = 0; k < distinct; ++k) {
    Rng rng(1000 + 2ULL * static_cast<std::uint64_t>(k));
    SearchTrace trace = synthesize_trace(taxa, sites, cross, workload, rng);
    trace.scale_costs(slowdown);
    SimClusterConfig serial_config;
    serial_config.processors = 1;
    serial_times.push_back(simulate_trace(trace, serial_config).wall_seconds);
    parallel_times.push_back(
        simulate_trace(trace, sp_era_config(processors, slowdown)).wall_seconds);
  }
  auto at = [&](const std::vector<double>& v, int i) {
    return v[static_cast<std::size_t>(i % distinct)];
  };

  // Mode A: orderings sequentially, each parallel across the machine.
  double mode_a_makespan = 0.0;
  for (int k = 0; k < orderings; ++k) mode_a_makespan += at(parallel_times, k);
  const double mode_a_first = at(parallel_times, 0);

  // Mode B: independent serial jobs, list-scheduled on P processors.
  std::priority_queue<double, std::vector<double>, std::greater<>> cores;
  for (int p = 0; p < processors; ++p) cores.push(0.0);
  double mode_b_first = 1e300;
  double mode_b_makespan = 0.0;
  for (int k = 0; k < orderings; ++k) {
    const double start = cores.top();
    cores.pop();
    const double finish = start + at(serial_times, k);
    mode_b_first = std::min(mode_b_first, finish);
    mode_b_makespan = std::max(mode_b_makespan, finish);
    cores.push(finish);
  }

  const double day = 86400.0;
  std::printf("Study: %d orderings of %d taxa x %zu sites on %d processors "
              "(k=%d, Power3-era costs)\n\n", orderings, taxa, sites,
              processors, cross);
  std::printf("Mean serial time per ordering:   %8.2f h\n",
              serial_times[0] / 3600.0);
  std::printf("Mean parallel time per ordering: %8.2f h\n\n",
              parallel_times[0] / 3600.0);
  std::printf("%40s %14s %18s\n", "", "makespan", "first result in");
  std::printf("%40s %11.1f d %15.2f h\n",
              "A: intra-run parallel (fastDNAml)", mode_a_makespan / day,
              mode_a_first / 3600.0);
  std::printf("%40s %11.1f d %15.2f h\n",
              "B: independent serial orderings", mode_b_makespan / day,
              mode_b_first / 3600.0);
  std::printf("\nExpected shape: mode B wins modestly on throughput (perfect "
              "scaling),\nmode A delivers the first tree ~P/3x sooner — the "
              "paper's argument for\nparallelizing within an ordering.\n");
  return 0;
}
