// Experiment: section 1.1 — the number of unrooted bifurcating topologies,
// (2n-5)!!, motivating why exhaustive search is impossible. The paper
// quotes 2.8e74 for 50 taxa, 1.7e182 for 100, and "4.2e284" for 150 (the
// 150-taxon exponent is a typo in the paper: the mantissa matches 4.2e301).
#include <cstdio>

#include "tree/counting.hpp"

int main() {
  using namespace fdml;
  std::printf("Number of distinct tree topologies by taxon count\n");
  std::printf("%6s %22s %22s\n", "taxa", "unrooted (2n-5)!!", "rooted (2n-3)!!");
  for (int n : {4, 5, 6, 8, 10, 15, 20, 25, 50, 100, 150, 200, 500, 1000}) {
    std::printf("%6d %22s %22s\n", n,
                count_unrooted_topologies(n).to_string().c_str(),
                count_rooted_topologies(n).to_string().c_str());
  }
  std::printf("\nPaper reference points: 50 taxa -> 2.8e74, 100 -> 1.7e182, "
              "150 -> 4.2e301 (paper prints e284; mantissa agrees).\n");
  std::printf("Stepwise addition instead evaluates sum(2i-5) = %d candidate\n"
              "insertions for 150 taxa — the whole point of the algorithm.\n",
              [] {
                int total = 0;
                for (int i = 4; i <= 150; ++i) total += 2 * i - 5;
                return total;
              }());
  return 0;
}
