// Experiment: section 3.2's method comparison — "Parsimony methods are
// less computationally complex than maximum likelihood methods" (via Snell
// et al.), and the broader point that fastDNAml exists so biologists can
// afford to compare ML against cheaper methods on result quality.
//
// Reports per-tree evaluation cost (ML full optimization vs Fitch scoring
// vs one NJ construction) and end-to-end search quality (RF distance to the
// generating tree) for ML, parsimony, and NJ on the same simulated data.
#include <cstdio>

#include "fdml.hpp"

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);
  const int taxa = static_cast<int>(args.get_int("taxa", 40));
  const std::size_t sites = static_cast<std::size_t>(args.get_int("sites", 600));
  const int reps = static_cast<int>(args.get_int("reps", 5));

  Tree truth(3);
  const Alignment alignment = make_paper_like_dataset(taxa, sites, 31, &truth);
  const PatternAlignment data(alignment);
  const SubstModel model = SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);

  // --- per-tree cost ---
  Rng rng(7);
  TaskEvaluator ml(data, model, RateModel::uniform());
  double ml_seconds = 0.0;
  double fitch_seconds = 0.0;
  for (int r = 0; r < reps; ++r) {
    const Tree tree = random_tree(taxa, rng);
    TreeTask task;
    task.newick = to_newick(tree, data.names(), 17);
    task.smooth_passes = 8;
    ml_seconds += ml.evaluate(task).cpu_seconds;
    CpuTimer timer;
    (void)fitch_score(tree, data);
    fitch_seconds += timer.seconds();
  }
  CpuTimer nj_timer;
  const Tree nj_tree = neighbor_joining(data);
  const double nj_seconds = nj_timer.seconds();

  std::printf("Per-tree evaluation cost (%d taxa x %zu sites, mean of %d)\n",
              taxa, sites, reps);
  std::printf("  ML (full branch optimization): %10.3f ms\n",
              1e3 * ml_seconds / reps);
  std::printf("  Parsimony (Fitch score):       %10.3f ms\n",
              1e3 * fitch_seconds / reps);
  std::printf("  ML / parsimony cost ratio:     %10.1fx\n",
              ml_seconds / fitch_seconds);
  std::printf("  NJ (whole tree, once):         %10.3f ms\n\n", 1e3 * nj_seconds);

  // --- end-to-end search quality ---
  CpuTimer ml_search_timer;
  SearchOptions ml_options;
  ml_options.seed = 3;
  SerialTaskRunner runner(data, model, RateModel::uniform());
  const SearchResult ml_result = StepwiseSearch(data, ml_options).run(runner);
  const double ml_search_seconds = ml_search_timer.seconds();
  const Tree ml_best = tree_from_newick(ml_result.best_newick, data.names());

  CpuTimer pars_timer;
  ParsimonyOptions pars_options;
  pars_options.seed = 3;
  const ParsimonySearchResult pars = parsimony_search(data, pars_options);
  const double pars_seconds = pars_timer.seconds();

  std::printf("End-to-end search vs the generating tree (RF in [0,%d])\n",
              2 * (taxa - 3));
  std::printf("%14s %12s %10s %16s\n", "method", "time", "RF", "score");
  std::printf("%14s %11.2fs %10d %16.2f (lnL)\n", "ML",
              ml_search_seconds, robinson_foulds(ml_best, truth),
              ml_result.best_log_likelihood);
  std::printf("%14s %11.2fs %10d %16.0f (changes)\n", "parsimony",
              pars_seconds, robinson_foulds(pars.tree, truth), pars.score);
  std::printf("%14s %11.2fs %10d %16s\n", "NJ", nj_seconds,
              robinson_foulds(nj_tree, truth), "-");
  std::printf("\nExpected shape: parsimony/NJ are orders of magnitude cheaper "
              "per tree;\nML matches or beats their topological accuracy.\n");
  return 0;
}
