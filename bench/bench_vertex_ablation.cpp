// Experiment: section 3.2's vertex-crossing ablation — "Setting the number
// of vertices crossed to one ... decreases the efficiency of scalability
// because there is a smaller total amount of work done between
// synchronizations. Increasing the number of vertices to be crossed would
// improve the scaling behavior."
//
// Method: synthesize the 50-taxon workload at k = 1, 2, 5 (calibrated task
// costs scaled to Power3+-era speed) and compare simulated speedups.
#include <cstdio>

#include "fdml.hpp"

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);
  const int taxa = static_cast<int>(args.get_int("taxa", 50));
  const std::size_t sites = static_cast<std::size_t>(args.get_int("sites", 1858));
  const double slowdown = args.get_double("slowdown", 30.0);

  const Alignment sample = make_paper_like_dataset(16, 250, 7);
  const PatternAlignment sample_data(sample);
  const SubstModel model =
      SubstModel::f84_from_tstv(sample_data.base_frequencies(), 2.0);
  const WorkloadModel workload =
      calibrate_workload(sample_data, model, RateModel::uniform());

  const auto procs = args.get_int_list("procs", {4, 8, 16, 32, 64});
  std::printf("Simulated speedup by rearrangement setting (vertices crossed), "
              "%d taxa x %zu sites\n", taxa, sites);
  std::printf("%11s", "processors");
  for (int k : {1, 2, 5}) std::printf("      k=%d", k);
  std::printf("  %8s\n", "perfect");

  std::vector<SearchTrace> traces;
  for (int k : {1, 2, 5}) {
    Rng rng(100 + static_cast<std::uint64_t>(k));
    SearchTrace trace = synthesize_trace(taxa, sites, k, workload, rng);
    trace.scale_costs(slowdown);
    traces.push_back(std::move(trace));
  }

  for (std::int64_t p : procs) {
    std::printf("%11lld", static_cast<long long>(p));
    SimClusterConfig config = sp_era_config(static_cast<int>(p), slowdown);
    for (const SearchTrace& trace : traces) {
      std::printf(" %8.2f", simulated_speedup(trace, config));
    }
    std::printf("  %8d\n", config.workers());
  }

  // Barrier-slack view of the same effect at 64 processors.
  std::printf("\nMean barrier slack at 64 processors (more work between "
              "barriers -> slack matters less):\n");
  const int ks[] = {1, 2, 5};
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const SimClusterConfig config = sp_era_config(64, slowdown);
    const SimResult r = simulate_trace(traces[i], config);
    std::printf("  k=%d: slack %.3fs/round, utilization %.0f%%, "
                "total tasks %zu\n", ks[i], r.mean_round_slack_seconds,
                100.0 * r.worker_utilization, traces[i].total_tasks());
  }
  std::printf("\nExpected shape: larger k -> higher speedup at high processor "
              "counts (paper ran its study at k=5).\n");
  return 0;
}
