// Kernel microbenchmarks (google-benchmark): the primitives whose costs
// drive everything else — transition matrices, CLV updates, edge likelihood
// evaluation, Newton branch optimization, pattern compression, Fitch
// scoring, topology hashing. These numbers calibrate the cluster simulator
// (see WorkloadModel) and document where the cycles go.
#include <benchmark/benchmark.h>

#include "fdml.hpp"

namespace {

using namespace fdml;

const SubstModel& f84_model() {
  static const SubstModel model =
      SubstModel::f84_from_tstv({0.28, 0.21, 0.26, 0.25}, 2.0);
  return model;
}

void BM_TransitionMatrix(benchmark::State& state) {
  Mat4 p{};
  double t = 0.01;
  for (auto _ : state) {
    f84_model().transition(t, p);
    benchmark::DoNotOptimize(p);
    t += 1e-6;
  }
}
BENCHMARK(BM_TransitionMatrix);

void BM_TransitionWithDerivatives(benchmark::State& state) {
  Mat4 p{};
  Mat4 dp{};
  Mat4 d2p{};
  double t = 0.01;
  for (auto _ : state) {
    f84_model().transition_with_derivs(t, p, dp, d2p);
    benchmark::DoNotOptimize(d2p);
    t += 1e-6;
  }
}
BENCHMARK(BM_TransitionWithDerivatives);

void BM_TransitionMatrixCached(benchmark::State& state) {
  TransitionCache cache(512);
  Mat4 p{};
  int i = 0;
  for (auto _ : state) {
    // Cycle a fixed set of lengths: steady-state behaviour of smoothing,
    // where the same effective lengths recur pass after pass.
    cache.transition(f84_model(), 0.01 + i * 1e-3, p);
    benchmark::DoNotOptimize(p);
    i = (i + 1) & 63;
  }
  state.counters["hit_rate"] = cache.hit_rate();
}
BENCHMARK(BM_TransitionMatrixCached);

struct EngineFixture {
  EngineFixture(int taxa, std::size_t sites)
      : alignment(make_paper_like_dataset(taxa, sites, 7)),
        data(alignment),
        engine(data, f84_model(), RateModel::uniform()),
        rng(3),
        tree(random_tree(taxa, rng)) {
    engine.attach(tree);
  }
  Alignment alignment;
  PatternAlignment data;
  LikelihoodEngine engine;
  Rng rng;
  Tree tree;
};

void BM_FullTreeLikelihood(benchmark::State& state) {
  EngineFixture fx(static_cast<int>(state.range(0)),
                   static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    fx.engine.invalidate_all();
    benchmark::DoNotOptimize(fx.engine.log_likelihood());
  }
  state.SetLabel(std::to_string(fx.data.num_patterns()) + " patterns");
}
BENCHMARK(BM_FullTreeLikelihood)
    ->Args({20, 500})
    ->Args({50, 1858})
    ->Args({150, 1269});

void BM_EdgeLikelihoodEvaluate(benchmark::State& state) {
  EngineFixture fx(50, 1858);
  const auto [u, v] = fx.tree.edges()[5];
  const EdgeLikelihood f = fx.engine.edge_likelihood(u, v);
  double t = 0.05;
  double d1 = 0.0;
  double d2 = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.evaluate(t, &d1, &d2));
    t = t < 0.5 ? t + 1e-4 : 0.05;
  }
  const KernelCounters counters = fx.engine.counters();
  state.counters["cache_hit_rate"] = counters.transition_hit_rate();
  state.counters["scratch_MB_reused"] =
      static_cast<double>(counters.scratch_bytes_reused) / (1024.0 * 1024.0);
}
BENCHMARK(BM_EdgeLikelihoodEvaluate);

void BM_NewtonOptimizeEdge(benchmark::State& state) {
  EngineFixture fx(50, 1858);
  BranchOptimizer optimizer(fx.engine);
  const auto edges = fx.tree.edges();
  std::size_t e = 0;
  for (auto _ : state) {
    const auto [u, v] = edges[e % edges.size()];
    fx.tree.set_length(u, v, 0.1);
    fx.engine.on_length_changed(u, v);
    benchmark::DoNotOptimize(optimizer.optimize_edge(fx.tree, u, v));
    ++e;
  }
  state.counters["cache_hit_rate"] = fx.engine.counters().transition_hit_rate();
}
BENCHMARK(BM_NewtonOptimizeEdge);

void BM_FullSmooth(benchmark::State& state) {
  EngineFixture fx(static_cast<int>(state.range(0)), 1000);
  BranchOptimizer optimizer(fx.engine);
  for (auto _ : state) {
    for (const auto& [u, v] : fx.tree.edges()) fx.tree.set_length(u, v, 0.1);
    fx.engine.invalidate_all();
    benchmark::DoNotOptimize(optimizer.smooth(fx.tree, 2));
  }
}
BENCHMARK(BM_FullSmooth)->Arg(20)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_PatternCompression(benchmark::State& state) {
  const Alignment alignment =
      make_paper_like_dataset(static_cast<int>(state.range(0)), 1858, 7);
  for (auto _ : state) {
    const PatternAlignment data(alignment);
    benchmark::DoNotOptimize(data.num_patterns());
  }
}
BENCHMARK(BM_PatternCompression)->Arg(50)->Arg(101)->Unit(benchmark::kMillisecond);

void BM_FitchScore(benchmark::State& state) {
  EngineFixture fx(50, 1858);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fitch_score(fx.tree, fx.data));
  }
}
BENCHMARK(BM_FitchScore);

void BM_TopologyHash(benchmark::State& state) {
  Rng rng(5);
  const Tree tree = random_tree(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology_hash(tree));
  }
}
BENCHMARK(BM_TopologyHash)->Arg(50)->Arg(150);

void BM_NewickRoundTrip(benchmark::State& state) {
  Rng rng(5);
  const int taxa = 150;
  const Tree tree = random_tree(taxa, rng);
  const auto names = default_taxon_names(taxa);
  for (auto _ : state) {
    const std::string text = to_newick(tree, names, 17);
    benchmark::DoNotOptimize(tree_from_newick(text, names));
  }
}
BENCHMARK(BM_NewickRoundTrip);

void BM_SimulateAlignment(benchmark::State& state) {
  Rng rng(7);
  const Tree tree = random_yule_tree(50, rng);
  SimulateOptions options;
  options.num_sites = 1858;
  for (auto _ : state) {
    Rng sim(11);
    benchmark::DoNotOptimize(simulate_alignment(tree, default_taxon_names(50),
                                                f84_model(), RateModel::uniform(),
                                                options, sim));
  }
}
BENCHMARK(BM_SimulateAlignment)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
