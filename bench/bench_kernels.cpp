// Kernel microbenchmarks: the primitives whose costs drive everything else —
// transition matrices, CLV updates, edge likelihood evaluation, Newton
// branch optimization, pattern compression, Fitch scoring, topology hashing.
// These numbers calibrate the cluster simulator (see WorkloadModel) and
// document where the cycles go.
//
// Two modes:
//   bench_kernels                 google-benchmark suite (plus the sweep)
//   bench_kernels --json=OUT.json --check=BASELINE.json [--tolerance=0.2]
//     SIMD backend sweep only: drives every compiled kernel backend over
//     identical SoA buffers, reports patterns/s + GFLOP/s + speedup vs
//     scalar, writes a line-oriented JSON snapshot, and (with --check)
//     fails if throughput regressed against a baseline snapshot:
//       - speedup_vs_scalar of each vector backend may not drop more than
//         `tolerance` relative to the baseline (host-portable signal), and
//         the widest backend must stay >= 2x scalar on clv_combine and
//         edge_evaluate (the kernel layer's headline contract);
//       - with --check-absolute, raw patterns/s is also compared (only
//         meaningful when baseline and current run share a host);
//       - the disabled-tracing overhead contract is enforced: constructing
//         and destroying an obs::Span with tracing off must cost < 2% of
//         one edge_evaluate call (baseline-independent, measured live).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fdml.hpp"
#include "likelihood/kernels.hpp"
#include "util/aligned.hpp"
#include "util/simd.hpp"

namespace {

using namespace fdml;

const SubstModel& f84_model() {
  static const SubstModel model =
      SubstModel::f84_from_tstv({0.28, 0.21, 0.26, 0.25}, 2.0);
  return model;
}

// ---------------------------------------------------------------------------
// SIMD backend sweep
// ---------------------------------------------------------------------------

struct SweepResult {
  std::string kernel;
  std::string backend;
  double patterns_per_s = 0.0;
  double gflops = 0.0;
  double speedup_vs_scalar = 1.0;
};

using BenchClock = std::chrono::steady_clock;

// One timing cell of the sweep: a kernel body at a fixed backend. Cells are
// calibrated to a fixed window, then sampled round-robin across *all* cells
// for several rounds, keeping the per-cell minimum. Interleaving matters:
// on busy shared hosts noise is correlated in time, so measuring scalar
// first and AVX2 seconds later would put them in different noise regimes
// and swing the speedup ratios by tens of percent. Spreading every cell's
// samples across the whole run and taking the least-interrupted one makes
// the ratios reproducible.
struct TimingCell {
  const char* kernel;
  const char* backend;
  double flops_per_cat_pattern;
  std::function<void()> body;
  std::size_t iters = 4;
  double best_secs = 1e300;
};

void time_cells(std::vector<TimingCell>& cells) {
  for (TimingCell& cell : cells) {
    cell.body();  // warm caches and page in buffers
    for (;;) {
      const auto start = BenchClock::now();
      for (std::size_t i = 0; i < cell.iters; ++i) cell.body();
      const double s =
          std::chrono::duration<double>(BenchClock::now() - start).count();
      if (s >= 0.03) break;
      cell.iters *= 4;
    }
  }
  constexpr int kRounds = 7;
  for (int round = 0; round < kRounds; ++round) {
    for (TimingCell& cell : cells) {
      const auto start = BenchClock::now();
      for (std::size_t i = 0; i < cell.iters; ++i) cell.body();
      const double s =
          std::chrono::duration<double>(BenchClock::now() - start).count();
      const double per_call = s / static_cast<double>(cell.iters);
      if (per_call < cell.best_secs) cell.best_secs = per_call;
    }
  }
}

// Single-cell convenience wrapper (used by the full-tree context sweep).
template <class F>
double seconds_per_call(F&& body) {
  std::vector<TimingCell> cells(1);
  cells[0].kernel = "";
  cells[0].backend = "";
  cells[0].flops_per_cat_pattern = 0.0;
  cells[0].body = std::forward<F>(body);
  time_cells(cells);
  return cells[0].best_secs;
}

// Sweep geometry: L1/L2-resident planes so the numbers measure arithmetic,
// not DRAM. Matches a mid-size alignment (e.g. 50 taxa x 1858 sites
// compresses to ~1000 patterns).
constexpr std::size_t kSweepPatterns = 512;  // multiple of kPatternPad
constexpr std::size_t kSweepCats = 4;

const SweepResult* find_result(const std::vector<SweepResult>& results,
                               const std::string& kernel,
                               const std::string& backend);

std::vector<SweepResult> run_backend_sweep() {
  const std::size_t padded = kSweepPatterns;
  const std::size_t plane = 4 * padded;

  // Deterministic positive operands (CLVs are probabilities).
  Rng rng(42);
  AlignedVector<double> a_planes(kSweepCats * plane);
  AlignedVector<double> b_planes(kSweepCats * plane);
  AlignedVector<double> out(kSweepCats * plane);
  AlignedVector<double> coeff(kSweepCats * plane);
  AlignedVector<double> site(padded), site_d1(padded), site_d2(padded);
  for (auto& x : a_planes) x = rng.uniform(0.05, 1.0);
  for (auto& x : b_planes) x = rng.uniform(0.05, 1.0);
  std::vector<std::uint8_t> codes(padded);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.range(1, 15));

  Mat4 pa{};
  Mat4 pb{};
  f84_model().transition(0.07, pa);
  f84_model().transition(0.19, pb);
  double tip_tab_a[64];
  double tip_tab_b[64];
  for (int s = 0; s < 4; ++s) {
    for (int code = 0; code < 16; ++code) {
      double ta = 0.0, tb = 0.0;
      for (int j = 0; j < 4; ++j) {
        if ((code >> j) & 1) {
          ta += pa[s][j];
          tb += pb[s][j];
        }
      }
      tip_tab_a[s * 16 + code] = ta;
      tip_tab_b[s * 16 + code] = tb;
    }
  }
  const Vec4 lam = f84_model().eigenvalues();
  double e[4], lam_arr[4];
  for (int k = 0; k < 4; ++k) {
    e[k] = std::exp(lam[k] * 0.1);
    lam_arr[k] = lam[k];
  }
  const Mat4& left = f84_model().left_eigenvectors();
  const Mat4& right = f84_model().right_eigenvectors();
  const Vec4& pi = f84_model().frequencies();
  Mat4 pr{};
  for (int k = 0; k < 4; ++k)
    for (int i = 0; i < 4; ++i) pr[k][i] = pi[i] * right[i][k];

  // Multi-edge capture operands: kBatchEdges candidate edges whose a/b
  // planes cycle through the category planes above (distinct pointers per
  // edge, cache-resident like a real candidate chunk).
  constexpr std::size_t kBatchEdges = 16;
  AlignedVector<double> batch_coeff(kBatchEdges * plane);
  std::vector<const double*> batch_a(kBatchEdges);
  std::vector<const double*> batch_b(kBatchEdges);
  std::vector<double*> batch_out(kBatchEdges);
  for (std::size_t k = 0; k < kBatchEdges; ++k) {
    batch_a[k] = a_planes.data() + (k % kSweepCats) * plane;
    batch_b[k] = b_planes.data() + ((k + 1) % kSweepCats) * plane;
    batch_out[k] = batch_coeff.data() + k * plane;
  }

  // Build every (kernel, backend) timing cell up front, then sample them
  // interleaved (see time_cells). Nominal FLOPs per (category, pattern)
  // match the engine's accounting: internal-internal combine 68, tip-tip
  // 12, capture 40, evaluate-with-derivs 24.
  std::vector<TimingCell> cells;
  for (const KernelTable* table : compiled_kernel_tables()) {
    if (!simd::cpu_supports(table->backend)) continue;

    // clv_combine, internal x internal (the deep-tree steady state).
    cells.push_back({"clv_combine", table->name, 68.0, [=, &a_planes,
                                                        &b_planes, &out] {
                       ClvOperand ia, ib;
                       for (std::size_t cat = 0; cat < kSweepCats; ++cat) {
                         ia.planes = a_planes.data() + cat * plane;
                         ia.p = &pa[0][0];
                         ib.planes = b_planes.data() + cat * plane;
                         ib.p = &pb[0][0];
                         table->clv_combine(0, padded, padded, ia, ib,
                                            out.data() + cat * plane);
                       }
                     }});

    // clv_combine, tip x tip (lookup-table kernel; cherry nodes).
    cells.push_back({"clv_combine_tip", table->name, 12.0,
                     [=, &a_planes, &b_planes, &out, &codes, &tip_tab_a,
                      &tip_tab_b] {
                       ClvOperand ia, ib;
                       for (std::size_t cat = 0; cat < kSweepCats; ++cat) {
                         ia.planes = a_planes.data();
                         ia.codes = codes.data();
                         ia.tip_tab = tip_tab_a;
                         ib.planes = b_planes.data();
                         ib.codes = codes.data();
                         ib.tip_tab = tip_tab_b;
                         table->clv_combine(0, padded, padded, ia, ib,
                                            out.data() + cat * plane);
                       }
                     }});

    // edge_capture: eigen-coefficient projection.
    cells.push_back({"edge_capture", table->name, 40.0,
                     [=, &a_planes, &b_planes, &pr, &left, &coeff] {
                       for (std::size_t cat = 0; cat < kSweepCats; ++cat) {
                         table->edge_capture(padded,
                                             a_planes.data() + cat * plane,
                                             b_planes.data() + cat * plane,
                                             &pr[0][0], &left[0][0], 0.25,
                                             coeff.data() + cat * plane);
                       }
                     }});

    // edge_evaluate with derivatives: the Newton inner loop.
    cells.push_back({"edge_evaluate", table->name, 24.0,
                     [=, &coeff, &e, &lam_arr, &site, &site_d1, &site_d2] {
                       for (std::size_t cat = 0; cat < kSweepCats; ++cat) {
                         table->edge_evaluate(padded,
                                              coeff.data() + cat * plane, e,
                                              lam_arr,
                                              /*accumulate=*/cat != 0,
                                              /*derivs=*/true, site.data(),
                                              site_d1.data(), site_d2.data());
                       }
                     }});

    // batch_edge_evaluate: the multi-edge capture behind BatchEdgeEvaluator —
    // kBatchEdges coefficient sets projected per call while the transition
    // rows stay hot. Reported patterns/s is per-call (one pattern sweep
    // covering all edges), so the interesting number is the vs-scalar ratio.
    cells.push_back(
        {"batch_edge_evaluate", table->name, 40.0 * kBatchEdges,
         [=, &batch_a, &batch_b, &batch_out, &pr, &left] {
           for (std::size_t cat = 0; cat < kSweepCats; ++cat) {
             table->edge_capture_multi(padded, kBatchEdges, batch_a.data(),
                                       batch_b.data(), &pr[0][0], &left[0][0],
                                       0.25, batch_out.data());
           }
         }});
  }
  time_cells(cells);

  std::vector<SweepResult> results;
  const double pats = static_cast<double>(padded);
  for (const TimingCell& cell : cells) {
    SweepResult res;
    res.kernel = cell.kernel;
    res.backend = cell.backend;
    res.patterns_per_s = pats / cell.best_secs;
    res.gflops = static_cast<double>(kSweepCats) * pats *
                 cell.flops_per_cat_pattern / cell.best_secs / 1e9;
    if (res.backend == "scalar") {
      res.speedup_vs_scalar = 1.0;
    } else if (const SweepResult* scalar_row =
                   find_result(results, cell.kernel, "scalar")) {
      res.speedup_vs_scalar = res.patterns_per_s / scalar_row->patterns_per_s;
    }
    results.push_back(res);
  }
  return results;
}

// Full-tree likelihood per backend: end-to-end context for the kernel rows,
// including the transition-cache hit rate the run sustained.
void run_full_tree_sweep(std::vector<SweepResult>& results,
                         double* out_hit_rate) {
  const std::string saved = simd::backend_name(simd::active_backend());
  const Alignment alignment = make_paper_like_dataset(50, 1858, 7);
  const PatternAlignment data(alignment);

  // The engine captures its kernel table at construction, so one engine per
  // backend lets the bodies run interleaved without flipping the global
  // backend mid-measurement (same noise-correlation argument as the kernel
  // cells above).
  std::vector<std::unique_ptr<LikelihoodEngine>> engines;
  std::vector<Tree> trees;
  std::vector<TimingCell> cells;
  // Engines keep a reference to their attached tree; reserve so push_back
  // never relocates a Tree out from under an engine.
  trees.reserve(compiled_kernel_tables().size());
  for (const KernelTable* table : compiled_kernel_tables()) {
    if (!simd::cpu_supports(table->backend)) continue;
    if (!simd::set_backend(table->name)) continue;
    engines.push_back(std::make_unique<LikelihoodEngine>(
        data, f84_model(), RateModel::uniform()));
    Rng rng(3);
    trees.push_back(random_tree(50, rng));
    LikelihoodEngine* engine = engines.back().get();
    engine->attach(trees.back());
    cells.push_back({"full_tree", table->name, 0.0, [engine] {
                       engine->invalidate_all();
                       benchmark::DoNotOptimize(engine->log_likelihood());
                     },
                     /*iters=*/1});
  }
  simd::set_backend(saved);
  time_cells(cells);

  double scalar_pps = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SweepResult res;
    res.kernel = "full_tree";
    res.backend = cells[i].backend;
    res.patterns_per_s =
        static_cast<double>(data.num_patterns()) / cells[i].best_secs;
    const KernelCounters k = engines[i]->counters();
    res.gflops = k.kernel_ns > 0
                     ? static_cast<double>(engines[i]->flops()) /
                           static_cast<double>(k.kernel_ns)
                     : 0.0;
    if (res.backend == "scalar") {
      scalar_pps = res.patterns_per_s;
      res.speedup_vs_scalar = 1.0;
    } else if (scalar_pps > 0.0) {
      res.speedup_vs_scalar = res.patterns_per_s / scalar_pps;
    }
    *out_hit_rate = k.transition_hit_rate();
    results.push_back(res);
  }
}

void write_sweep_json(const std::string& path,
                      const std::vector<SweepResult>& results,
                      double hit_rate) {
  std::ofstream out(path);
  out << "{\"schema\": \"fdml-bench-kernels-v1\", \"patterns\": "
      << kSweepPatterns << ", \"categories\": " << kSweepCats
      << ", \"host_active_backend\": \""
      << simd::backend_name(simd::active_backend())
      << "\", \"transition_hit_rate\": " << hit_rate << "}\n";
  char line[512];
  for (const SweepResult& r : results) {
    std::snprintf(line, sizeof(line),
                  "{\"kernel\": \"%s\", \"backend\": \"%s\", "
                  "\"patterns_per_s\": %.6e, \"gflops\": %.4f, "
                  "\"speedup_vs_scalar\": %.4f}\n",
                  r.kernel.c_str(), r.backend.c_str(), r.patterns_per_s,
                  r.gflops, r.speedup_vs_scalar);
    out << line;
  }
}

// Minimal field scanners for the line-oriented snapshot format above (no
// JSON library in the build; the format is machine-written and rigid).
bool scan_string(const std::string& line, const char* key, std::string& out) {
  const std::string needle = std::string("\"") + key + "\": \"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t start = at + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return false;
  out = line.substr(start, end - start);
  return true;
}

bool scan_number(const std::string& line, const char* key, double& out) {
  const std::string needle = std::string("\"") + key + "\": ";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  out = std::strtod(line.c_str() + at + needle.size(), nullptr);
  return true;
}

const SweepResult* find_result(const std::vector<SweepResult>& results,
                               const std::string& kernel,
                               const std::string& backend) {
  for (const SweepResult& r : results) {
    if (r.kernel == kernel && r.backend == backend) return &r;
  }
  return nullptr;
}

/// Returns true if the current results hold up against the baseline file.
bool check_against_baseline(const std::string& path,
                            const std::vector<SweepResult>& results,
                            double tolerance, bool check_absolute) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_kernels: cannot read baseline %s\n",
                 path.c_str());
    return false;
  }
  bool ok = true;
  std::string line;
  while (std::getline(in, line)) {
    std::string kernel, backend;
    double base_pps = 0.0, base_speedup = 0.0;
    if (!scan_string(line, "kernel", kernel) ||
        !scan_string(line, "backend", backend) ||
        !scan_number(line, "patterns_per_s", base_pps)) {
      continue;  // header / context line
    }
    const SweepResult* now = find_result(results, kernel, backend);
    if (now == nullptr) {
      std::fprintf(stderr,
                   "bench_kernels: baseline has %s/%s but this build does not "
                   "(skipped)\n",
                   kernel.c_str(), backend.c_str());
      continue;
    }
    if (backend != "scalar" && scan_number(line, "speedup_vs_scalar", base_speedup)) {
      if (now->speedup_vs_scalar < (1.0 - tolerance) * base_speedup) {
        std::fprintf(stderr,
                     "REGRESSION %s/%s: speedup_vs_scalar %.2f < baseline "
                     "%.2f - %.0f%%\n",
                     kernel.c_str(), backend.c_str(), now->speedup_vs_scalar,
                     base_speedup, tolerance * 100.0);
        ok = false;
      }
    }
    if (check_absolute && now->patterns_per_s < (1.0 - tolerance) * base_pps) {
      std::fprintf(stderr,
                   "REGRESSION %s/%s: %.3e patterns/s < baseline %.3e - "
                   "%.0f%%\n",
                   kernel.c_str(), backend.c_str(), now->patterns_per_s,
                   base_pps, tolerance * 100.0);
      ok = false;
    }
  }

  // Headline contract, independent of the baseline's numbers: the widest
  // usable backend must hold >= 2x scalar on the two dominant kernels —
  // and, since the batched-evaluation work, on the end-to-end full_tree
  // number too (microkernel wins that evaporate in orchestration are the
  // exact regression this line exists to catch).
  std::string widest = "scalar";
  for (const SweepResult& r : results) {
    if (r.kernel == "clv_combine" && r.backend != "scalar") widest = r.backend;
  }
  if (widest != "scalar") {
    for (const char* kernel : {"clv_combine", "edge_evaluate", "full_tree"}) {
      const SweepResult* r = find_result(results, kernel, widest);
      if (r != nullptr && r->speedup_vs_scalar < 2.0) {
        std::fprintf(stderr,
                     "REGRESSION %s/%s: speedup_vs_scalar %.2f < required "
                     "2.0x\n",
                     kernel, widest.c_str(), r->speedup_vs_scalar);
        ok = false;
      }
    }
  }
  return ok;
}

// ---------------------------------------------------------------------------
// google-benchmark suite (unchanged workloads)
// ---------------------------------------------------------------------------

void BM_TransitionMatrix(benchmark::State& state) {
  Mat4 p{};
  double t = 0.01;
  for (auto _ : state) {
    f84_model().transition(t, p);
    benchmark::DoNotOptimize(p);
    t += 1e-6;
  }
}
BENCHMARK(BM_TransitionMatrix);

void BM_TransitionWithDerivatives(benchmark::State& state) {
  Mat4 p{};
  Mat4 dp{};
  Mat4 d2p{};
  double t = 0.01;
  for (auto _ : state) {
    f84_model().transition_with_derivs(t, p, dp, d2p);
    benchmark::DoNotOptimize(d2p);
    t += 1e-6;
  }
}
BENCHMARK(BM_TransitionWithDerivatives);

void BM_TransitionMatrixCached(benchmark::State& state) {
  TransitionCache cache(512);
  Mat4 p{};
  int i = 0;
  for (auto _ : state) {
    // Cycle a fixed set of lengths: steady-state behaviour of smoothing,
    // where the same effective lengths recur pass after pass.
    cache.transition(f84_model(), 0.01 + i * 1e-3, p);
    benchmark::DoNotOptimize(p);
    i = (i + 1) & 63;
  }
  state.counters["hit_rate"] = cache.hit_rate();
  state.counters["evictions"] = static_cast<double>(cache.evictions());
}
BENCHMARK(BM_TransitionMatrixCached);

struct EngineFixture {
  EngineFixture(int taxa, std::size_t sites)
      : alignment(make_paper_like_dataset(taxa, sites, 7)),
        data(alignment),
        engine(data, f84_model(), RateModel::uniform()),
        rng(3),
        tree(random_tree(taxa, rng)) {
    engine.attach(tree);
  }
  Alignment alignment;
  PatternAlignment data;
  LikelihoodEngine engine;
  Rng rng;
  Tree tree;
};

void BM_FullTreeLikelihood(benchmark::State& state) {
  EngineFixture fx(static_cast<int>(state.range(0)),
                   static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    fx.engine.invalidate_all();
    benchmark::DoNotOptimize(fx.engine.log_likelihood());
  }
  state.SetLabel(std::to_string(fx.data.num_patterns()) + " patterns, " +
                 fx.engine.counters().simd_backend);
}
BENCHMARK(BM_FullTreeLikelihood)
    ->Args({20, 500})
    ->Args({50, 1858})
    ->Args({150, 1269});

void BM_EdgeLikelihoodEvaluate(benchmark::State& state) {
  EngineFixture fx(50, 1858);
  const auto [u, v] = fx.tree.edges()[5];
  const EdgeLikelihood f = fx.engine.edge_likelihood(u, v);
  double t = 0.05;
  double d1 = 0.0;
  double d2 = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.evaluate(t, &d1, &d2));
    t = t < 0.5 ? t + 1e-4 : 0.05;
  }
  const KernelCounters counters = fx.engine.counters();
  state.counters["cache_hit_rate"] = counters.transition_hit_rate();
  state.counters["scratch_MB_reused"] =
      static_cast<double>(counters.scratch_bytes_reused) / (1024.0 * 1024.0);
}
BENCHMARK(BM_EdgeLikelihoodEvaluate);

void BM_NewtonOptimizeEdge(benchmark::State& state) {
  EngineFixture fx(50, 1858);
  BranchOptimizer optimizer(fx.engine);
  const auto edges = fx.tree.edges();
  std::size_t e = 0;
  for (auto _ : state) {
    const auto [u, v] = edges[e % edges.size()];
    fx.tree.set_length(u, v, 0.1);
    fx.engine.on_length_changed(u, v);
    benchmark::DoNotOptimize(optimizer.optimize_edge(fx.tree, u, v));
    ++e;
  }
  state.counters["cache_hit_rate"] = fx.engine.counters().transition_hit_rate();
}
BENCHMARK(BM_NewtonOptimizeEdge);

void BM_FullSmooth(benchmark::State& state) {
  EngineFixture fx(static_cast<int>(state.range(0)), 1000);
  BranchOptimizer optimizer(fx.engine);
  for (auto _ : state) {
    for (const auto& [u, v] : fx.tree.edges()) fx.tree.set_length(u, v, 0.1);
    fx.engine.invalidate_all();
    benchmark::DoNotOptimize(optimizer.smooth(fx.tree, 2));
  }
}
BENCHMARK(BM_FullSmooth)->Arg(20)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_PatternCompression(benchmark::State& state) {
  const Alignment alignment =
      make_paper_like_dataset(static_cast<int>(state.range(0)), 1858, 7);
  for (auto _ : state) {
    const PatternAlignment data(alignment);
    benchmark::DoNotOptimize(data.num_patterns());
  }
}
BENCHMARK(BM_PatternCompression)->Arg(50)->Arg(101)->Unit(benchmark::kMillisecond);

void BM_FitchScore(benchmark::State& state) {
  EngineFixture fx(50, 1858);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fitch_score(fx.tree, fx.data));
  }
}
BENCHMARK(BM_FitchScore);

void BM_TopologyHash(benchmark::State& state) {
  Rng rng(5);
  const Tree tree = random_tree(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology_hash(tree));
  }
}
BENCHMARK(BM_TopologyHash)->Arg(50)->Arg(150);

void BM_NewickRoundTrip(benchmark::State& state) {
  Rng rng(5);
  const int taxa = 150;
  const Tree tree = random_tree(taxa, rng);
  const auto names = default_taxon_names(taxa);
  for (auto _ : state) {
    const std::string text = to_newick(tree, names, 17);
    benchmark::DoNotOptimize(tree_from_newick(text, names));
  }
}
BENCHMARK(BM_NewickRoundTrip);

void BM_SimulateAlignment(benchmark::State& state) {
  Rng rng(7);
  const Tree tree = random_yule_tree(50, rng);
  SimulateOptions options;
  options.num_sites = 1858;
  for (auto _ : state) {
    Rng sim(11);
    benchmark::DoNotOptimize(simulate_alignment(tree, default_taxon_names(50),
                                                f84_model(), RateModel::uniform(),
                                                options, sim));
  }
}
BENCHMARK(BM_SimulateAlignment)->Unit(benchmark::kMillisecond);

/// Cost contract of the observability layer (obs/trace.hpp): when tracing
/// is disabled, an instrumented call site pays one relaxed atomic load.
/// Measures the real disabled-Span cost and compares it against the
/// fastest edge_evaluate per-call time from the sweep — the hot kernel an
/// over-eager instrumentation pass would hurt first. Baseline-independent:
/// both sides are measured on this host, this build.
bool check_span_overhead(const std::vector<SweepResult>& results) {
  if (obs::trace_enabled()) {
    std::fprintf(stderr, "span-overhead: tracing unexpectedly enabled\n");
    return false;
  }
  constexpr int kIters = 1 << 20;
  using Clock = std::chrono::steady_clock;
  double best_ns = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const auto start = Clock::now();
    for (int i = 0; i < kIters; ++i) {
      obs::Span span("bench", "overhead", "i", i);
      benchmark::DoNotOptimize(&span);
    }
    const double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                Clock::now() - start)
                                .count()) /
        kIters;
    best_ns = std::min(best_ns, ns);
  }

  double best_call_ns = 1e300;
  for (const SweepResult& r : results) {
    if (r.kernel != "edge_evaluate") continue;
    // patterns_per_s = padded patterns / seconds-per-call.
    const double call_ns =
        static_cast<double>(kSweepPatterns) / r.patterns_per_s * 1e9;
    best_call_ns = std::min(best_call_ns, call_ns);
  }
  if (best_call_ns >= 1e300) {
    std::fprintf(stderr, "span-overhead: no edge_evaluate row in sweep\n");
    return false;
  }
  const double fraction = best_ns / best_call_ns;
  std::printf("disabled-span overhead: %.2f ns/span vs %.0f ns/edge_evaluate "
              "(%.3f%%, contract < 2%%)\n",
              best_ns, best_call_ns, fraction * 100.0);
  if (fraction >= 0.02) {
    std::fprintf(stderr,
                 "span-overhead: %.3f%% >= 2%% — disabled tracing is no "
                 "longer free\n",
                 fraction * 100.0);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string check_path;
  double tolerance = 0.2;
  bool check_absolute = false;
  bool sweep_only = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
      sweep_only = true;
    } else if (arg.rfind("--check=", 0) == 0) {
      check_path = arg.substr(8);
      sweep_only = true;
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg == "--check-absolute") {
      check_absolute = true;
    } else if (arg == "--sweep-only") {
      sweep_only = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }

  std::vector<SweepResult> results = run_backend_sweep();
  double hit_rate = 0.0;
  run_full_tree_sweep(results, &hit_rate);

  std::printf("SIMD kernel sweep (%zu padded patterns, %zu categories)\n",
              kSweepPatterns, kSweepCats);
  std::printf("%-16s %-8s %14s %9s %9s\n", "kernel", "backend", "patterns/s",
              "GFLOP/s", "vs scalar");
  for (const SweepResult& r : results) {
    std::printf("%-16s %-8s %14.3e %9.2f %8.2fx\n", r.kernel.c_str(),
                r.backend.c_str(), r.patterns_per_s, r.gflops,
                r.speedup_vs_scalar);
  }

  if (!json_path.empty()) {
    write_sweep_json(json_path, results, hit_rate);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!check_path.empty()) {
    if (!check_against_baseline(check_path, results, tolerance,
                                check_absolute)) {
      std::fprintf(stderr, "bench_kernels: throughput check FAILED against %s\n",
                   check_path.c_str());
      return 1;
    }
    std::printf("throughput check passed against %s (tolerance %.0f%%)\n",
                check_path.c_str(), tolerance * 100.0);
    if (!check_span_overhead(results)) {
      std::fprintf(stderr,
                   "bench_kernels: disabled-tracing overhead check FAILED\n");
      return 1;
    }
  }
  if (sweep_only) return 0;

  int bargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bargc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
