// Experiments: Figures 3 and 4 — wall time and speedup vs processor count
// (4..64, by powers of two) for the paper's three datasets: 50 and 101 taxa
// x 1858 positions and 150 taxa x 1269 positions, rearrangement setting 5,
// averaged over random taxon orderings, with the serial program as the
// baseline ("the most conservative fashion possible").
//
// Substitution (DESIGN.md): wall times come from discrete-event replays of
// search traces on a simulated SP-class machine, with task costs scaled to
// Power3+-era speed (--slowdown, default 30x this machine). Two trace
// sources:
//   synth (default): traces synthesized with the algorithm's exact round
//     structure and calibrated kernel costs — seconds to produce, so the
//     full 3-dataset x multi-ordering sweep runs by default;
//   real: traces recorded from live serial searches on site-scaled
//     alignments (costs rescaled linearly to full length) — slower but
//     measured; used by default once on a reduced setting to validate the
//     synthesizer against reality (skip with --validate=0).
//
//   ./bench_fig3_fig4_scaling                          # default sweep
//   ./bench_fig3_fig4_scaling --orderings=10           # paper's averaging
//   ./bench_fig3_fig4_scaling --mode=real --cross=5 --sites-scale=0.1
#include <cstdio>
#include <string>
#include <vector>

#include "fdml.hpp"

namespace {

using namespace fdml;

struct DatasetSpec {
  const char* name;
  int taxa;
  std::size_t sites;
};

constexpr DatasetSpec kDatasets[] = {
    {"50 taxa x 1858", 50, 1858},
    {"101 taxa x 1858", 101, 1858},
    {"150 taxa x 1269", 150, 1269},
};

SearchTrace record_real_trace(const DatasetSpec& spec, double sites_scale,
                              int cross, std::uint64_t seed) {
  const std::size_t scaled_sites = std::max<std::size_t>(
      50, static_cast<std::size_t>(spec.sites * sites_scale));
  const Alignment alignment =
      make_paper_like_dataset(spec.taxa, scaled_sites, 555);
  const PatternAlignment data(alignment);
  const SubstModel model =
      SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
  SerialTaskRunner runner(data, model, RateModel::uniform());
  SearchOptions options;
  options.seed = seed;
  options.rearrange_cross = cross;
  options.final_rearrange_cross = cross;
  SearchResult result = StepwiseSearch(data, options).run(runner);
  // Kernel cost is linear in alignment length; rescale measured costs from
  // the scaled alignment back to the full-length dataset.
  result.trace.scale_costs(static_cast<double>(spec.sites) /
                           static_cast<double>(scaled_sites));
  result.trace.dataset = spec.name;
  return std::move(result.trace);
}

void print_tables(const std::vector<std::vector<SearchTrace>>& traces,
                  const std::vector<std::int64_t>& procs, double slowdown) {
  // Figure 3: mean wall-clock seconds per ordering.
  std::printf("\n== Figure 3: time to complete one ordering (seconds, "
              "simulated SP) ==\n%11s", "processors");
  for (const auto& dataset_traces : traces) {
    std::printf(" %18s", dataset_traces.front().dataset.c_str());
  }
  std::printf("\n");
  std::vector<double> serial_means(traces.size(), 0.0);
  for (std::size_t d = 0; d < traces.size(); ++d) {
    SimClusterConfig config;
    config.processors = 1;
    for (const auto& trace : traces[d]) {
      serial_means[d] += simulate_trace(trace, config).wall_seconds;
    }
    serial_means[d] /= static_cast<double>(traces[d].size());
  }
  std::printf("%11s", "1 (serial)");
  for (double s : serial_means) std::printf(" %18.0f", s);
  std::printf("\n");
  for (std::int64_t p : procs) {
    std::printf("%11lld", static_cast<long long>(p));
    for (const auto& dataset_traces : traces) {
      SimClusterConfig config = sp_era_config(static_cast<int>(p), slowdown);
      double mean = 0.0;
      for (const auto& trace : dataset_traces) {
        mean += simulate_trace(trace, config).wall_seconds;
      }
      std::printf(" %18.0f", mean / static_cast<double>(dataset_traces.size()));
    }
    std::printf("\n");
  }

  // Figure 4: speedup ratios vs the serial baseline.
  std::printf("\n== Figure 4: scaling ratio vs serial ==\n%11s %9s", "processors",
              "perfect");
  for (const auto& dataset_traces : traces) {
    std::printf(" %18s", dataset_traces.front().dataset.c_str());
  }
  std::printf("\n");
  for (std::int64_t p : procs) {
    std::printf("%11lld %9lld", static_cast<long long>(p),
                static_cast<long long>(p));
    for (std::size_t d = 0; d < traces.size(); ++d) {
      SimClusterConfig config = sp_era_config(static_cast<int>(p), slowdown);
      double mean = 0.0;
      for (const auto& trace : traces[d]) {
        mean += simulate_trace(trace, config).wall_seconds;
      }
      mean /= static_cast<double>(traces[d].size());
      std::printf(" %18.3f", serial_means[d] / mean);
    }
    std::printf("\n");
  }

  // The paper's headline arithmetic for the largest dataset.
  const SimClusterConfig config = sp_era_config(64, slowdown);
  double at64 = 0.0;
  for (const auto& trace : traces.back()) {
    at64 += simulate_trace(trace, config).wall_seconds;
  }
  at64 /= static_cast<double>(traces.back().size());
  std::printf("\nHeadline (150 taxa): %.1f days serial vs %.1f hours at 64 "
              "processors;\n200 orderings: %.1f years serial vs %.1f days on "
              "64 processors.\n",
              serial_means.back() / 86400.0, at64 / 3600.0,
              200.0 * serial_means.back() / (365.25 * 86400.0),
              200.0 * at64 / 86400.0);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string mode = args.get("mode", "synth");
  const int orderings = static_cast<int>(args.get_int("orderings", 3));
  const int cross = static_cast<int>(args.get_int("cross", 5));
  const double slowdown = args.get_double("slowdown", 30.0);
  const auto procs = args.get_int_list("procs", {4, 8, 16, 32, 64});

  std::printf("fastdnaml++ scaling study (mode=%s, k=%d, %d orderings, "
              "%.0fx CPU slowdown to Power3+ era)\n",
              mode.c_str(), cross, orderings, slowdown);

  std::vector<std::vector<SearchTrace>> traces;
  if (mode == "real") {
    const double sites_scale = args.get_double("sites-scale", 0.1);
    for (const DatasetSpec& spec : kDatasets) {
      std::printf("  recording %d real trace(s) for %s at %.0f%% of sites...\n",
                  orderings, spec.name, 100.0 * sites_scale);
      std::vector<SearchTrace> dataset_traces;
      for (int k = 0; k < orderings; ++k) {
        SearchTrace trace = record_real_trace(spec, sites_scale, cross,
                                              1 + 2ULL * static_cast<std::uint64_t>(k));
        trace.scale_costs(slowdown);
        dataset_traces.push_back(std::move(trace));
      }
      traces.push_back(std::move(dataset_traces));
    }
  } else {
    const Alignment sample = make_paper_like_dataset(16, 250, 7);
    const PatternAlignment sample_data(sample);
    const SubstModel model =
        SubstModel::f84_from_tstv(sample_data.base_frequencies(), 2.0);
    const WorkloadModel workload =
        calibrate_workload(sample_data, model, RateModel::uniform());
    for (const DatasetSpec& spec : kDatasets) {
      std::vector<SearchTrace> dataset_traces;
      for (int k = 0; k < orderings; ++k) {
        Rng rng(1 + 2ULL * static_cast<std::uint64_t>(k));
        SearchTrace trace =
            synthesize_trace(spec.taxa, spec.sites, cross, workload, rng);
        trace.dataset = spec.name;
        trace.scale_costs(slowdown);
        dataset_traces.push_back(std::move(trace));
      }
      traces.push_back(std::move(dataset_traces));
    }
  }

  print_tables(traces, procs, slowdown);

  // Validation: one real recorded trace vs one synthesized trace at matched
  // reduced settings; their serial times and speedup curves should agree.
  if (mode != "real" && args.get_int("validate", 1) != 0) {
    std::printf("\n== Synthesizer validation (50 taxa, k=1, 5%% of sites, "
                "live serial search) ==\n");
    const DatasetSpec spec = kDatasets[0];
    SearchTrace real = record_real_trace(spec, 0.05, 1, 1);
    real.scale_costs(slowdown);

    const Alignment sample = make_paper_like_dataset(16, 250, 7);
    const PatternAlignment sample_data(sample);
    const SubstModel model =
        SubstModel::f84_from_tstv(sample_data.base_frequencies(), 2.0);
    const WorkloadModel workload =
        calibrate_workload(sample_data, model, RateModel::uniform());
    Rng rng(1);
    SearchTrace synth = synthesize_trace(spec.taxa, spec.sites, 1, workload, rng);
    synth.scale_costs(slowdown);

    std::printf("%22s %12s %12s\n", "", "real trace", "synthesized");
    std::printf("%22s %12zu %12zu\n", "tasks", real.total_tasks(),
                synth.total_tasks());
    SimClusterConfig config;
    config.processors = 1;
    std::printf("%22s %11.0fs %11.0fs\n", "serial time",
                simulate_trace(real, config).wall_seconds,
                simulate_trace(synth, config).wall_seconds);
    for (int p : {16, 64}) {
      const SimClusterConfig parallel = sp_era_config(p, slowdown);
      std::printf("%19s %2d %12.2f %12.2f\n", "speedup at", p,
                  simulated_speedup(real, parallel),
                  simulated_speedup(synth, parallel));
    }
  }
  return 0;
}
