// Observability benchmark for the likelihood kernel layer: transition-cache
// effectiveness, scratch-arena reuse and time spent inside the kernels under
// a realistic branch-smoothing workload, plus raw edge-evaluation
// throughput with a warm cache. These counters back the claim that the hot
// path is allocation-free and dominated by cached transition lookups.
#include <chrono>
#include <cstdio>

#include "fdml.hpp"

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);
  const int passes = static_cast<int>(args.get_int("passes", 3));
  const int evals = static_cast<int>(args.get_int("evals", 20000));

  std::printf("Transition-cache and scratch-arena counters, full smoothing "
              "workload (F84, uniform rates, %d passes)\n", passes);
  std::printf("%6s %9s %10s %10s %9s %11s %10s %10s\n", "taxa", "patterns",
              "P(t) hits", "misses", "hit rate", "scratch MB", "kernel ms",
              "CLV comps");

  struct Case {
    int taxa;
    std::size_t sites;
  };
  for (const Case c : {Case{20, 500}, Case{50, 1858}, Case{150, 1269}}) {
    const Alignment alignment = make_paper_like_dataset(c.taxa, c.sites, 99);
    const PatternAlignment data(alignment);
    const SubstModel model =
        SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
    LikelihoodEngine engine(data, model, RateModel::uniform());
    Rng rng(5);
    Tree tree = random_tree(c.taxa, rng);
    engine.attach(tree);
    BranchOptimizer optimizer(engine);
    optimizer.smooth(tree, passes);

    const KernelCounters k = engine.counters();
    std::printf("%6d %9zu %10llu %10llu %8.1f%% %11.1f %10.1f %10llu\n",
                c.taxa, data.num_patterns(),
                static_cast<unsigned long long>(k.transition_hits),
                static_cast<unsigned long long>(k.transition_misses),
                100.0 * k.transition_hit_rate(),
                static_cast<double>(k.scratch_bytes_reused) / (1024.0 * 1024.0),
                static_cast<double>(k.kernel_ns) / 1e6,
                static_cast<unsigned long long>(k.clv_computations));
  }

  // Raw evaluate throughput: one captured edge, cycling branch lengths with
  // derivatives — the Newton inner loop with nothing else in the way.
  {
    const Alignment alignment = make_paper_like_dataset(50, 1858, 99);
    const PatternAlignment data(alignment);
    const SubstModel model =
        SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
    LikelihoodEngine engine(data, model, RateModel::uniform());
    Rng rng(5);
    Tree tree = random_tree(50, rng);
    engine.attach(tree);
    const auto [u, v] = tree.edges()[5];
    const EdgeLikelihood f = engine.edge_likelihood(u, v);
    engine.transition_cache().reset_stats();

    double d1 = 0.0;
    double d2 = 0.0;
    double sink = 0.0;
    double t = 0.05;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < evals; ++i) {
      sink += f.evaluate(t, &d1, &d2);
      t = t < 0.5 ? t + 1e-4 : 0.05;
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::printf("\nEdge evaluation, 50 taxa / %zu patterns, warm cache: "
                "%d evals in %.3f s = %.0f evals/s (hit rate %.1f%%)\n",
                data.num_patterns(), evals, seconds,
                static_cast<double>(evals) / seconds,
                100.0 * engine.transition_cache().hit_rate());
    (void)sink;
  }
  return 0;
}
