// Experiment: section 2's compute-to-communication claim — "there were
// hundreds of thousands of floating point operations performed in the
// analysis of a particular tree per byte of data transmitted back to the
// main program."
//
// Method: evaluate real worker tasks (full branch-length optimization of
// random topologies) over paper-sized alignments, counting kernel FLOPs via
// the engine's instrumentation and measuring the exact serialized size of
// the result message.
#include <cstdio>

#include "fdml.hpp"

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);
  const int tasks = static_cast<int>(args.get_int("tasks", 3));

  std::printf("FLOPs per result byte, real worker tasks (F84, uniform rates)\n");
  std::printf("%6s %7s %10s %14s %14s %12s\n", "taxa", "sites", "patterns",
              "MFLOPs/task", "result bytes", "FLOPs/byte");

  struct Case {
    int taxa;
    std::size_t sites;
  };
  for (const Case c : {Case{50, 1858}, Case{101, 1858}, Case{150, 1269}}) {
    const Alignment alignment = make_paper_like_dataset(c.taxa, c.sites, 99);
    const PatternAlignment data(alignment);
    const SubstModel model =
        SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
    TaskEvaluator evaluator(data, model, RateModel::uniform());

    Rng rng(5);
    double total_flops = 0.0;
    double total_bytes = 0.0;
    for (int k = 0; k < tasks; ++k) {
      const Tree tree = random_tree(c.taxa, rng);
      TreeTask task;
      task.task_id = static_cast<std::uint64_t>(k);
      task.newick = to_newick(tree, data.names(), 17);
      task.focus_taxon = -1;
      task.smooth_passes = 8;
      const std::uint64_t before = evaluator.engine().flops();
      const TaskResult result = evaluator.evaluate(task);
      const std::uint64_t after = evaluator.engine().flops();
      Packer packer;
      result.pack(packer);
      total_flops += static_cast<double>(after - before);
      total_bytes += static_cast<double>(packer.size());
    }
    const double flops_per_task = total_flops / tasks;
    const double bytes_per_task = total_bytes / tasks;
    std::printf("%6d %7zu %10zu %14.1f %14.0f %12.0f\n", c.taxa, c.sites,
                data.num_patterns(), flops_per_task / 1e6, bytes_per_task,
                flops_per_task / bytes_per_task);
  }
  std::printf("\nPaper claim: 'hundreds of thousands of floating point "
              "operations ... per byte of data transmitted back'.\n");
  return 0;
}
