// fdmld — the fault-surviving multi-job inference service.
//
// One long-running server multiplexes many concurrent stepwise searches
// over a single shared worker pool (the paper's PVM fabric reimagined as a
// service): bounded admission with explicit load-shedding, round-robin
// fairness across jobs, per-job supervision with checkpoint-backed retry,
// and graceful drain on SIGTERM.
//
//   # the server (fabric hub + scheduler + service endpoint)
//   fdmld --mode=serve --port=7100 --fabric-size=6 --service-port=7200
//         --taxa=12 --sites=300 --max-active=2 --max-queued=8
//         --checkpoint-dir=ckpts --metrics-out=metrics.json
//
//   # a non-master rank (foreman/monitor/worker), reconnect-hardened
//   fdmld --mode=role --rank=3 --port=7100 --fabric-size=6
//         --taxa=12 --sites=300 --reconnect --heartbeat-ms=250
//
//   # submit one job and wait for its tree (exit 0 done, 3 shed, 4 failed)
//   fdmld --mode=submit --service-port=7200 --seed=11 --out=job11.nwk
//
//   # metrics snapshot (JSON, includes service.*, job.<id>.* counters and
//   # one job_progress row per admitted job)
//   fdmld --mode=stats --service-port=7200
//
//   # Prometheus text exposition (hub + per-rank telemetry + job progress);
//   # per-rank series need the fabric started with --telemetry-ms=N
//   fdmld --mode=scrape --service-port=7200
//
//   # the serial reference for bit-for-bit comparison
//   fdmld --mode=reference --seed=11 --taxa=12 --sites=300 --out=ref11.nwk
//
//   # seeded socket-layer chaos between the ranks and the hub
//   fdmld --mode=proxy --listen-port=7101 --target-port=7100
//         --chaos="chaos-plan v1 seed=9 sock_latency=0.05 sock_close=0.002"
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "fdml.hpp"

namespace {

using namespace fdml;

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

void install_signal_handlers() {
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
}

/// Every process of a deployment rebuilds the identical dataset from the
/// same flags (or reads the same file) — the paper's PVM processes each
/// loading the alignment.
Alignment dataset_from_args(const CliArgs& args) {
  const int taxa = static_cast<int>(args.get_int("taxa", 12));
  const auto sites = static_cast<std::size_t>(args.get_int("sites", 300));
  return args.has("input") ? read_phylip_file(args.get("input", ""))
                           : make_paper_like_dataset(taxa, sites, 4242);
}

/// Canonical result file (same bytes as parallel_search --out and the
/// soak's serial reference): newick at precision 10, then "lnL %.6f".
bool write_result_file(const std::string& path, const std::string& newick,
                       const PatternAlignment& data, double log_likelihood) {
  const Tree best = tree_from_newick(newick, data.names());
  std::ofstream out(path);
  out << to_newick(best, data.names(), 10) << "\n";
  char lnl[64];
  std::snprintf(lnl, sizeof lnl, "lnL %.6f\n", log_likelihood);
  out << lnl;
  if (!out) {
    std::fprintf(stderr, "error writing %s\n", path.c_str());
    return false;
  }
  return true;
}

SocketRunOptions socket_options_from_args(const CliArgs& args) {
  SocketRunOptions options;
  options.socket.rank = static_cast<int>(args.get_int("rank", 0));
  options.socket.size = static_cast<int>(args.get_int("fabric-size", 0));
  options.socket.host = args.get("host", "127.0.0.1");
  options.socket.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  options.socket.connect_timeout =
      std::chrono::milliseconds(args.get_int("connect-timeout-ms", 15000));
  options.foreman.worker_timeout =
      std::chrono::milliseconds(args.get_int("timeout-ms", 8000));
  if (args.has("reconnect")) {
    options.socket.reconnect = true;
    options.socket.reconnect_budget =
        std::chrono::milliseconds(args.get_int("reconnect-budget-ms", 15000));
  }
  if (args.has("heartbeat-ms")) {
    options.foreman.heartbeat_interval =
        std::chrono::milliseconds(args.get_int("heartbeat-ms", 0));
  }
  // --telemetry-ms=N turns on the telemetry plane: every non-master rank
  // ships metric deltas to the hub each period. 0 (the default) keeps the
  // fabric byte-for-byte identical to a telemetry-free build.
  options.telemetry_interval =
      std::chrono::milliseconds(args.get_int("telemetry-ms", 0));
  return options;
}

/// Starts the rotating trace-segment writer when --trace-dir is given.
/// Returns null when tracing-to-segments is off.
std::unique_ptr<obs::TraceSegmentWriter> maybe_start_segments(
    const CliArgs& args) {
  if (!args.has("trace-dir")) return nullptr;
  obs::Tracer::instance().enable();
  obs::TraceSegmentOptions options;
  options.max_segment_bytes = static_cast<std::size_t>(args.get_int(
      "trace-segment-bytes",
      static_cast<std::int64_t>(options.max_segment_bytes)));
  options.max_segments = static_cast<std::size_t>(args.get_int(
      "trace-segments", static_cast<std::int64_t>(options.max_segments)));
  auto writer = std::make_unique<obs::TraceSegmentWriter>(
      args.get("trace-dir", ""), options);
  writer->start();
  return writer;
}

int run_serve(const CliArgs& args) {
  install_signal_handlers();
  // Start trace capture before the cluster so connection setup spans land
  // in the first segment; stopped (final flush) after the drain below so
  // every span has closed by then.
  auto segments = maybe_start_segments(args);
  const Alignment alignment = dataset_from_args(args);
  const PatternAlignment data(alignment);
  const SubstModel model =
      SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
  const RateModel rates = RateModel::uniform();

  SocketRunOptions cluster_options = socket_options_from_args(args);
  cluster_options.socket.rank = 0;
  // The service retries failed rounds (the remote foreman may be riding out
  // an outage) before degrading to in-process evaluation.
  cluster_options.master.max_round_retries =
      static_cast<int>(args.get_int("round-retries", 2));
  cluster_options.master.watchdog_timeout =
      std::chrono::milliseconds(args.get_int("watchdog-ms", 60000));
  SocketCluster cluster(data, model, rates, cluster_options);
  std::printf("fdmld: hub on port %u, fabric size %d\n",
              static_cast<unsigned>(cluster_options.socket.port),
              cluster_options.socket.size);
  if (!cluster.wait_ready(cluster_options.socket.connect_timeout)) {
    std::fprintf(stderr, "error: fabric incomplete (some rank never joined)\n");
    return 1;
  }

  SchedulerOptions sched;
  sched.admission.max_active = static_cast<int>(args.get_int("max-active", 2));
  sched.admission.max_queued = static_cast<int>(args.get_int("max-queued", 8));
  sched.max_retries = static_cast<int>(args.get_int("job-retries", 2));
  sched.checkpoint_dir = args.get("checkpoint-dir", "");
  JobScheduler scheduler(data, cluster.runner(), sched);
  ServiceServerOptions server_options;
  server_options.port =
      static_cast<std::uint16_t>(args.get_int("service-port", 0));
  const bool telemetry_on = cluster_options.telemetry_interval.count() > 0;
  if (telemetry_on) server_options.telemetry = &cluster.telemetry();
  ServiceServer server(scheduler, obs::MetricsRegistry::process(),
                       server_options);
  std::printf("fdmld: service ready on port %u (active<=%d queued<=%d)\n",
              static_cast<unsigned>(server.port()), sched.admission.max_active,
              sched.admission.max_queued);
  std::fflush(stdout);

  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    // Telemetry frames that arrive between search rounds sit in the hub's
    // receive queue until someone drains them; this keeps scrapes fresh
    // while the fabric is idle.
    if (telemetry_on) cluster.pump_telemetry();
  }
  // Graceful drain: stop admitting, interrupt every in-flight job at its
  // next durable checkpoint, and report where each one is resumable. The
  // service endpoint stays up through the drain so blocked submitters get
  // their kJobDone(kInterrupted) replies instead of a reset.
  std::printf("fdmld: signal %d, draining\n", static_cast<int>(g_signal));
  scheduler.drain();
  scheduler.wait_all();
  for (const JobOutcome& outcome : scheduler.outcomes()) {
    if (outcome.status == JobStatus::kInterrupted) {
      std::printf("fdmld: job %llu interrupted, resumable at generation %llu\n",
                  static_cast<unsigned long long>(outcome.job_id),
                  static_cast<unsigned long long>(outcome.resume_generation));
    }
  }
  const SchedulerStats stats = scheduler.stats();
  std::printf("fdmld: drained; %llu completed, %llu interrupted, %llu failed, "
              "%llu shed, %llu in flight\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.interrupted),
              static_cast<unsigned long long>(stats.failed),
              static_cast<unsigned long long>(stats.rejected_full +
                                              stats.rejected_draining),
              static_cast<unsigned long long>(stats.in_flight));
  if (args.has("metrics-out")) {
    const std::string path = args.get("metrics-out", "");
    std::ofstream out(path);
    out << obs::MetricsRegistry::process().snapshot().to_json();
    if (!out) {
      std::fprintf(stderr, "error writing %s\n", path.c_str());
      return 1;
    }
    std::printf("fdmld: wrote metrics snapshot: %s\n", path.c_str());
  }
  server.close();
  cluster.shutdown();
  if (segments) {
    segments->stop();
    std::printf("fdmld: wrote %llu trace segment(s): %s\n",
                static_cast<unsigned long long>(segments->segments_written()),
                args.get("trace-dir", "").c_str());
  }
  return stats.in_flight == 0 ? 0 : 1;
}

int run_role(const CliArgs& args) {
  auto segments = maybe_start_segments(args);
  const Alignment alignment = dataset_from_args(args);
  const PatternAlignment data(alignment);
  const SubstModel model =
      SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
  const RateModel rates = RateModel::uniform();
  const SocketRunOptions options = socket_options_from_args(args);
  SocketRoleResult role;
  try {
    role = run_socket_role(data, model, rates, options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "rank %d: %s\n", options.socket.rank, error.what());
    return 1;
  }
  if (role.foreman.has_value()) {
    std::printf("foreman: %llu rounds, %llu tasks, %llu delinquencies, "
                "%llu probation passes, %llu heartbeat pings\n",
                static_cast<unsigned long long>(role.foreman->rounds),
                static_cast<unsigned long long>(role.foreman->tasks_completed),
                static_cast<unsigned long long>(role.foreman->delinquencies),
                static_cast<unsigned long long>(role.foreman->probation_passes),
                static_cast<unsigned long long>(role.foreman->heartbeat_pings));
  } else if (role.worker.has_value()) {
    std::printf("worker %d: %llu tasks, %.2fs CPU, %llu telemetry frames\n",
                role.rank,
                static_cast<unsigned long long>(role.worker->tasks_evaluated),
                role.worker->cpu_seconds,
                static_cast<unsigned long long>(role.worker->telemetry_frames));
  }
  if (segments) segments->stop();
  return 0;
}

int run_submit(const CliArgs& args) {
  JobSpec spec;
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  spec.rearrange_cross = static_cast<int>(args.get_int("cross", 1));
  spec.final_rearrange_cross = static_cast<int>(args.get_int("final-cross", 1));
  spec.name = args.get("name", "");
  const std::string host = args.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.get_int("service-port", 0));
  const auto timeout =
      std::chrono::milliseconds(args.get_int("wait-timeout-ms", 600000));
  ServiceReply reply;
  try {
    reply = service_submit(host, port, spec, timeout);
  } catch (const ServiceTimeoutError& error) {
    // Distinct from a protocol failure: the server is up but wedged (or the
    // job outlived --wait-timeout-ms). Retry later or raise the timeout.
    std::fprintf(stderr, "submit timed out: %s\n", error.what());
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "submit failed: %s\n", error.what());
    return 1;
  }
  if (reply.rejected.has_value()) {
    std::printf("job shed: %s\n", reject_reason_name(*reply.rejected));
    return 3;
  }
  const JobOutcome& outcome = *reply.outcome;
  if (outcome.status == JobStatus::kDone) {
    std::printf("job %llu done: lnL %.6f (%u retries)\n",
                static_cast<unsigned long long>(outcome.job_id),
                outcome.log_likelihood, outcome.retries);
    if (args.has("out")) {
      const Alignment alignment = dataset_from_args(args);
      const PatternAlignment data(alignment);
      if (!write_result_file(args.get("out", ""), outcome.newick, data,
                             outcome.log_likelihood)) {
        return 1;
      }
    }
    return 0;
  }
  if (outcome.status == JobStatus::kInterrupted) {
    std::printf("job %llu interrupted, resumable at generation %llu\n",
                static_cast<unsigned long long>(outcome.job_id),
                static_cast<unsigned long long>(outcome.resume_generation));
    return 4;
  }
  std::fprintf(stderr, "job %llu failed: %s\n",
               static_cast<unsigned long long>(outcome.job_id),
               outcome.error.c_str());
  return 4;
}

int run_stats(const CliArgs& args) {
  const std::string host = args.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.get_int("service-port", 0));
  std::string json;
  try {
    json = service_query_stats(host, port, std::chrono::milliseconds(
                                               args.get_int("wait-timeout-ms",
                                                            10000)));
  } catch (const ServiceTimeoutError& error) {
    std::fprintf(stderr, "stats timed out: %s\n", error.what());
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "stats failed: %s\n", error.what());
    return 1;
  }
  if (args.has("out")) {
    std::ofstream out(args.get("out", ""));
    out << json;
    if (!out) return 1;
  } else {
    std::fputs(json.c_str(), stdout);
  }
  return 0;
}

int run_scrape(const CliArgs& args) {
  const std::string host = args.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.get_int("service-port", 0));
  std::string text;
  try {
    text = service_scrape(host, port,
                          std::chrono::milliseconds(
                              args.get_int("wait-timeout-ms", 10000)));
  } catch (const ServiceTimeoutError& error) {
    std::fprintf(stderr, "scrape timed out: %s\n", error.what());
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "scrape failed: %s\n", error.what());
    return 1;
  }
  if (args.has("out")) {
    std::ofstream out(args.get("out", ""));
    out << text;
    if (!out) return 1;
  } else {
    std::fputs(text.c_str(), stdout);
  }
  return 0;
}

int run_reference(const CliArgs& args) {
  const Alignment alignment = dataset_from_args(args);
  const PatternAlignment data(alignment);
  const SubstModel model =
      SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
  const RateModel rates = RateModel::uniform();
  SearchOptions options;
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  options.rearrange_cross = static_cast<int>(args.get_int("cross", 1));
  options.final_rearrange_cross =
      static_cast<int>(args.get_int("final-cross", 1));
  options.record_trace = false;
  SerialTaskRunner runner(data, model, rates);
  const SearchResult result = StepwiseSearch(data, options).run(runner);
  std::printf("reference seed %llu: lnL %.6f\n",
              static_cast<unsigned long long>(options.seed),
              result.best_log_likelihood);
  if (args.has("out") &&
      !write_result_file(args.get("out", ""), result.best_newick, data,
                         result.best_log_likelihood)) {
    return 1;
  }
  return 0;
}

int run_proxy(const CliArgs& args) {
  install_signal_handlers();
  ChaosProxyOptions options;
  options.listen_port =
      static_cast<std::uint16_t>(args.get_int("listen-port", 0));
  options.target_host = args.get("host", "127.0.0.1");
  options.target_port =
      static_cast<std::uint16_t>(args.get_int("target-port", 0));
  if (args.has("chaos")) options.plan = FaultPlan::parse(args.get("chaos", ""));
  ChaosProxy proxy(options);
  std::printf("fdmld: chaos proxy ready on port %u -> %s:%u\n",
              static_cast<unsigned>(proxy.port()), options.target_host.c_str(),
              static_cast<unsigned>(options.target_port));
  std::printf("fdmld: plan %s\n", options.plan.serialize().c_str());
  std::fflush(stdout);
  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const ChaosProxyStats stats = proxy.stats();
  std::printf("proxy: %llu connections, %llu chunks, %llu delayed, "
              "%llu corrupted, %llu closed, %llu severed, %llu refused\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.chunks),
              static_cast<unsigned long long>(stats.delays),
              static_cast<unsigned long long>(stats.corruptions),
              static_cast<unsigned long long>(stats.closes),
              static_cast<unsigned long long>(stats.severed),
              static_cast<unsigned long long>(stats.refused));
  proxy.close();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has("log-level")) {
    const auto level = parse_log_level(args.get("log-level", ""));
    if (!level.has_value()) {
      std::fprintf(stderr,
                   "error: bad --log-level (debug|info|warn|error|off)\n");
      return 2;
    }
    set_log_level(*level);
  }
  const std::string mode = args.get("mode", "");
  if (mode == "serve") return run_serve(args);
  if (mode == "role") return run_role(args);
  if (mode == "submit") return run_submit(args);
  if (mode == "stats") return run_stats(args);
  if (mode == "scrape") return run_scrape(args);
  if (mode == "reference") return run_reference(args);
  if (mode == "proxy") return run_proxy(args);
  std::fprintf(stderr,
               "usage: fdmld "
               "--mode=serve|role|submit|stats|scrape|reference|proxy "
               "[flags]\n");
  return 2;
}
