// trace_report — turns a Chrome trace (from --trace-out on a live run, or
// from the simulator's virtual-time replay) into the paper's tables:
// per-worker utilization timelines, serial fraction, queue depth, per-round
// slack, task-time histograms, and — given a baseline trace — the
// speedup/efficiency row of Figure 3/4.
//
//   trace_report run.json
//   trace_report run4.json --baseline=run1.json     # speedup & efficiency
//   trace_report run.json --bins=48                 # finer timeline
//   trace_report run.json --assert-util-min=0.05 --assert-util-max=1.0
//                                                   # CI gate (exit 1)
#include <cstdio>
#include <fstream>
#include <string>

#include "obs/report.hpp"
#include "util/cli.hpp"

namespace {

bool load(const std::string& path, fdml::obs::TraceLog& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  try {
    out = fdml::obs::load_chrome_trace(in);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.what());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: %s TRACE.json [--baseline=TRACE.json] [--bins=N]\n"
                 "          [--assert-util-min=X] [--assert-util-max=X]\n",
                 argv[0]);
    return 2;
  }

  obs::TraceLog log;
  if (!load(args.positional().front(), log)) return 1;
  const int bins = static_cast<int>(args.get_int("bins", 24));
  const obs::TraceReport report = obs::analyze_trace(log, bins);
  std::fputs(obs::render_report(report).c_str(), stdout);

  if (args.has("baseline")) {
    obs::TraceLog base_log;
    if (!load(args.get("baseline", ""), base_log)) return 1;
    const obs::TraceReport base = obs::analyze_trace(base_log, bins);
    std::fputs(obs::render_scaling(obs::scaling_row(base, report)).c_str(),
               stdout);
  }

  // CI gate: a run whose workers sat idle (or a report whose math went
  // wild) fails loudly instead of producing a pretty table.
  if (args.has("assert-util-min") &&
      report.utilization < args.get_double("assert-util-min", 0.0)) {
    std::fprintf(stderr, "FAIL: utilization %.4f < min %.4f\n",
                 report.utilization, args.get_double("assert-util-min", 0.0));
    return 1;
  }
  if (args.has("assert-util-max") &&
      report.utilization > args.get_double("assert-util-max", 1.0)) {
    std::fprintf(stderr, "FAIL: utilization %.4f > max %.4f\n",
                 report.utilization, args.get_double("assert-util-max", 1.0));
    return 1;
  }
  return 0;
}
