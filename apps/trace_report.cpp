// trace_report — turns a Chrome trace (from --trace-out on a live run, a
// --trace-dir segment directory, or the simulator's virtual-time replay)
// into the paper's tables: per-worker utilization timelines, serial
// fraction, queue depth, per-round slack, task-time histograms, and —
// given a baseline trace — the speedup/efficiency row of Figure 3/4.
//
//   trace_report run.json
//   trace_report segments/                          # stitch segment-*.json
//   trace_report segments/ --stitch-out=all.json    # + write merged trace
//   trace_report run4.json --baseline=run1.json     # speedup & efficiency
//   trace_report run.json --bins=48                 # finer timeline
//   trace_report run.json --assert-util-min=0.05 --assert-util-max=1.0
//                                                   # CI gate (exit 1)
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "util/cli.hpp"

namespace {

bool load_one(const std::string& path, fdml::obs::TraceLog& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  try {
    out = fdml::obs::load_chrome_trace(in);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.what());
    return false;
  }
  return true;
}

/// Rotated segments under `dir`, in rotation (= time) order. The numeric
/// index is what orders them — lexicographic breaks past segment-9.
std::vector<std::string> list_segments(const std::string& dir) {
  std::vector<std::pair<long long, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("segment-", 0) != 0) continue;
    if (name.size() < 14 || name.substr(name.size() - 5) != ".json") continue;
    try {
      found.emplace_back(std::stoll(name.substr(8, name.size() - 13)),
                         entry.path().string());
    } catch (const std::exception&) {
      // Not a rotation index (e.g. a stitch output someone parked here).
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [index, path] : found) paths.push_back(std::move(path));
  return paths;
}

/// A file loads directly; a directory stitches its segment-*.json set.
bool load(const std::string& path, fdml::obs::TraceLog& out) {
  std::error_code ec;
  if (!std::filesystem::is_directory(path, ec)) return load_one(path, out);
  const auto paths = list_segments(path);
  if (paths.empty()) {
    std::fprintf(stderr, "error: no segment-*.json under %s\n", path.c_str());
    return false;
  }
  std::vector<fdml::obs::TraceLog> logs(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (!load_one(paths[i], logs[i])) return false;
  }
  out = fdml::obs::merge_trace_logs(logs);
  std::fprintf(stderr, "stitched %zu segment(s) from %s\n", paths.size(),
               path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: %s TRACE.json [--baseline=TRACE.json] [--bins=N]\n"
                 "          [--assert-util-min=X] [--assert-util-max=X]\n",
                 argv[0]);
    return 2;
  }

  obs::TraceLog log;
  if (!load(args.positional().front(), log)) return 1;
  if (args.has("stitch-out")) {
    const std::string path = args.get("stitch-out", "");
    std::ofstream out(path);
    log.write_chrome(out);
    if (!out) {
      std::fprintf(stderr, "error writing %s\n", path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote stitched trace: %s\n", path.c_str());
  }
  const int bins = static_cast<int>(args.get_int("bins", 24));
  const obs::TraceReport report = obs::analyze_trace(log, bins);
  std::fputs(obs::render_report(report).c_str(), stdout);

  if (args.has("baseline")) {
    obs::TraceLog base_log;
    if (!load(args.get("baseline", ""), base_log)) return 1;
    const obs::TraceReport base = obs::analyze_trace(base_log, bins);
    std::fputs(obs::render_scaling(obs::scaling_row(base, report)).c_str(),
               stdout);
  }

  // CI gate: a run whose workers sat idle (or a report whose math went
  // wild) fails loudly instead of producing a pretty table.
  if (args.has("assert-util-min") &&
      report.utilization < args.get_double("assert-util-min", 0.0)) {
    std::fprintf(stderr, "FAIL: utilization %.4f < min %.4f\n",
                 report.utilization, args.get_double("assert-util-min", 0.0));
    return 1;
  }
  if (args.has("assert-util-max") &&
      report.utilization > args.get_double("assert-util-max", 1.0)) {
    std::fprintf(stderr, "FAIL: utilization %.4f > max %.4f\n",
                 report.utilization, args.get_double("assert-util-max", 1.0));
    return 1;
  }
  return 0;
}
