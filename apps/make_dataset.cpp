// make_dataset — generates benchmark alignments shaped like the paper's
// rRNA datasets (see DESIGN.md: the European SSU rRNA alignments are not
// redistributable, so simulated data of identical dimensions stands in).
//
//   make_dataset --taxa=50 --sites=1858 --seed=1 --out=data/t50.phy
//   make_dataset --taxa=150 --sites=1269 --fasta --out=data/t150.fa \
//                --truth=data/t150_true.nwk
#include <cstdio>
#include <fstream>

#include "fdml.hpp"

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);
  const int taxa = static_cast<int>(args.get_int("taxa", 50));
  const std::size_t sites = static_cast<std::size_t>(args.get_int("sites", 1858));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string out = args.get("out", "dataset.phy");

  Tree truth(3);
  const Alignment alignment = make_paper_like_dataset(taxa, sites, seed, &truth);
  if (args.get_bool("fasta")) {
    write_fasta_file(out, alignment);
  } else {
    write_phylip_file(out, alignment);
  }
  std::printf("wrote %s: %d taxa x %zu sites (seed %llu)\n", out.c_str(), taxa,
              sites, static_cast<unsigned long long>(seed));

  if (args.has("truth")) {
    std::ofstream truth_out(args.get("truth", ""));
    truth_out << to_newick(truth, alignment.names(), 10) << "\n";
    std::printf("wrote generating tree to %s\n", args.get("truth", "").c_str());
  }
  return 0;
}
