// fastdnaml++ — the command-line program, in the spirit of the original
// fastDNAml interface: PHYLIP alignment in, maximum-likelihood tree out,
// with jumbles, bootstrap, rate categories, rearrangement control, and the
// parallel runtime behind a flag.
//
//   fastdnamlpp alignment.phy                         # serial, defaults
//   fastdnamlpp alignment.phy --jumble=10 --seed=3    # 10 addition orders
//   fastdnamlpp alignment.phy --workers=8             # parallel cluster
//   fastdnamlpp alignment.phy --bootstrap=100         # bootstrap supports
//   fastdnamlpp alignment.phy --tstv=2.0 --cross=5 --gamma=0.5 --categories=4
//   fastdnamlpp alignment.phy --out=best.nwk --svg=compare.svg
#include <csignal>
#include <cstdio>
#include <fstream>

#include "fdml.hpp"
#include "util/simd.hpp"

namespace {

// SIGINT/SIGTERM ask the run to stop at the next checkpoint boundary; the
// search throws SearchInterrupted after that checkpoint is durably
// committed, so a ^C'd run is always resumable from its last completed step.
volatile std::sig_atomic_t g_stop_signal = 0;

extern "C" void handle_stop_signal(int signal_number) {
  g_stop_signal = signal_number;
}

void usage(const char* program) {
  std::printf(
      "usage: %s ALIGNMENT.phy [options]\n"
      "  --seed=N          random seed for taxon addition order (default 1)\n"
      "  --jumble=N        number of random addition orders (default 1)\n"
      "  --bootstrap=N     bootstrap replicates instead of a plain search\n"
      "  --tstv=R          F84 transition/transversion ratio (default 2.0)\n"
      "  --gamma=ALPHA     discrete-gamma rate heterogeneity (off by default)\n"
      "  --categories=N    gamma categories (default 4)\n"
      "  --cross=K         vertices crossed in rearrangements (default 1)\n"
      "  --final-cross=K   final-pass setting (default = --cross)\n"
      "  --adaptive=K      escalate stalled rearrangements up to K\n"
      "  --workers=N       run the parallel cluster with N workers\n"
      "  --timeout-ms=T    worker fault-tolerance timeout (default 30000)\n"
      "  --transport=T     thread (default) or socket (multi-process TCP;\n"
      "                    launch one process per rank, see\n"
      "                    scripts/launch_cluster.sh)\n"
      "  --rank=N          socket mode: this process's rank (0 = master)\n"
      "  --port=P          socket mode: hub TCP port\n"
      "  --host=H          socket mode: hub address (default 127.0.0.1)\n"
      "  --fabric-size=S   socket mode: total process count\n"
      "  --checkpoint=FILE write a restart checkpoint after each addition\n"
      "  --checkpoint-keep=K  checkpoint generations retained (default 3)\n"
      "  --resume=FILE     continue an interrupted run from its checkpoint\n"
      "                    (rolls back to the newest valid generation)\n"
      "  --out=FILE        write the best tree (Newick)\n"
      "  --svg=FILE        write a comparison SVG across jumbles\n"
      "  --trace-out=FILE  write a Chrome trace of the run (chrome://tracing;\n"
      "                    feed it to trace_report for utilization tables)\n"
      "  --log-level=L     debug|info|warn|error|off (default warn)\n"
      "  --quiet           suppress the ASCII tree\n"
      "  --version         print version and SIMD kernel backend info\n",
      program);
}

void print_version() {
  std::printf("fastdnaml++ (fastDNAml reproduction)\n");
  std::printf("simd backend: %s (active), tier: %s (active)\n",
              fdml::simd::backend_name(fdml::simd::active_backend()),
              fdml::simd::tier_name(fdml::simd::active_tier()));
  std::printf("simd compiled:");
  for (const fdml::simd::Backend b : fdml::simd::compiled_backends()) {
    std::printf(" %s%s", fdml::simd::backend_name(b),
                fdml::simd::cpu_supports(b) ? "" : " (unsupported on this cpu)");
  }
  std::printf("\ntiers compiled:");
  for (const fdml::simd::Tier t : fdml::simd::compiled_tiers()) {
    std::printf(" %s", fdml::simd::tier_name(t));
  }
  std::printf("\n");
}

fdml::SocketRunOptions socket_options_from_args(const fdml::CliArgs& args) {
  fdml::SocketRunOptions options;
  options.socket.rank = static_cast<int>(args.get_int("rank", 0));
  options.socket.size = static_cast<int>(args.get_int("fabric-size", 0));
  options.socket.host = args.get("host", "127.0.0.1");
  options.socket.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  options.foreman.worker_timeout =
      std::chrono::milliseconds(args.get_int("timeout-ms", 30000));
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);
  if (args.has("version")) {
    print_version();
    return 0;
  }
  if (args.positional().empty()) {
    usage(argv[0]);
    return 2;
  }
  if (args.has("log-level")) {
    const auto level = parse_log_level(args.get("log-level", ""));
    if (!level.has_value()) {
      std::fprintf(stderr,
                   "error: bad --log-level (debug|info|warn|error|off)\n");
      return 2;
    }
    set_log_level(*level);
  }
  const std::string trace_out = args.get("trace-out", "");
  if (!trace_out.empty()) obs::Tracer::instance().enable();

  Alignment alignment;
  try {
    alignment = read_phylip_file(args.positional().front());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error reading %s: %s\n",
                 args.positional().front().c_str(), error.what());
    return 1;
  }
  const PatternAlignment data(alignment);
  std::printf("fastdnaml++ | %zu taxa x %zu sites -> %zu patterns\n",
              data.num_taxa(), alignment.num_sites(), data.num_patterns());

  const SubstModel model =
      SubstModel::f84_from_tstv(data.base_frequencies(), args.get_double("tstv", 2.0));
  const RateModel rates =
      args.has("gamma")
          ? RateModel::discrete_gamma(args.get_double("gamma", 0.5),
                                      static_cast<int>(args.get_int("categories", 4)))
          : RateModel::uniform();
  std::printf("model: %s, ts/tv=%.2f, rates: %s\n", model.name().c_str(),
              model.tstv_ratio(), rates.name().c_str());

  const std::string transport = args.get("transport", "thread");
  if (transport != "thread" && transport != "socket") {
    std::fprintf(stderr, "error: unknown --transport=%s (thread|socket)\n",
                 transport.c_str());
    return 2;
  }
  if (transport == "socket") {
    if (!args.has("port") || !args.has("fabric-size")) {
      std::fprintf(stderr,
                   "error: --transport=socket needs --port and --fabric-size "
                   "(and --rank, 0 for the master)\n");
      return 2;
    }
    if (args.has("bootstrap")) {
      std::fprintf(stderr,
                   "error: --bootstrap is not available over --transport=socket "
                   "(run the plain search; bootstrap uses in-process runners)\n");
      return 2;
    }
    const int rank = static_cast<int>(args.get_int("rank", 0));
    if (rank != 0) {
      // Non-master rank: run this process's role loop (foreman / monitor /
      // worker) until the fabric shuts down, then exit. Every rank loads
      // the same alignment file and model flags.
      SocketRoleResult role;
      try {
        role = run_socket_role(data, model, rates, socket_options_from_args(args));
      } catch (const std::exception& error) {
        std::fprintf(stderr, "rank %d: %s\n", rank, error.what());
        return 1;
      }
      if (role.foreman.has_value()) {
        std::printf("foreman: %llu rounds, %llu tasks, %llu quarantines\n",
                    static_cast<unsigned long long>(role.foreman->rounds),
                    static_cast<unsigned long long>(role.foreman->tasks_completed),
                    static_cast<unsigned long long>(role.foreman->quarantines));
      } else if (role.monitor.has_value()) {
        std::printf("monitor: %llu rounds, %llu completions\n",
                    static_cast<unsigned long long>(role.monitor->rounds),
                    static_cast<unsigned long long>(role.monitor->completions));
      } else if (role.worker.has_value()) {
        std::printf("worker %d: %llu tasks, %.2fs CPU\n", role.rank,
                    static_cast<unsigned long long>(role.worker->tasks_evaluated),
                    role.worker->cpu_seconds);
      }
      if (!trace_out.empty()) {
        obs::Tracer::instance().disable();
        const obs::TraceLog log = obs::Tracer::instance().drain();
        const std::string path = trace_out + ".rank" + std::to_string(rank);
        std::ofstream out(path);
        log.write_chrome(out);
        if (!out) {
          std::fprintf(stderr, "error writing %s\n", path.c_str());
          return 1;
        }
        std::printf("wrote trace: %s (%zu events)\n", path.c_str(),
                    log.events.size());
      }
      return 0;
    }
  }

  SearchOptions options;
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  options.rearrange_cross = static_cast<int>(args.get_int("cross", 1));
  options.final_rearrange_cross =
      static_cast<int>(args.get_int("final-cross", options.rearrange_cross));
  options.adaptive_max_cross = static_cast<int>(args.get_int("adaptive", 0));

  // Bootstrap mode.
  if (args.has("bootstrap")) {
    BootstrapOptions boot;
    boot.replicates = static_cast<int>(args.get_int("bootstrap", 100));
    boot.seed = options.seed;
    boot.search = options;
    std::printf("bootstrap: %d replicates...\n", boot.replicates);
    const BootstrapResult result = run_bootstrap(alignment, model, rates, boot);
    AsciiOptions ascii;
    ascii.show_support = true;
    std::printf("\nMajority-rule bootstrap consensus "
                "(labels = %% of replicates):\n%s\n",
                render_ascii(result.consensus, ascii).c_str());
    if (args.has("out")) {
      std::ofstream out(args.get("out", ""));
      out << to_newick(result.consensus) << "\n";
      std::printf("wrote %s\n", args.get("out", "").c_str());
    }
    return 0;
  }

  // Plain (possibly jumbled, possibly parallel) search.
  const int jumbles = static_cast<int>(args.get_int("jumble", 1));
  std::unique_ptr<InProcessCluster> cluster;
  std::unique_ptr<SocketCluster> socket_cluster;
  std::unique_ptr<SerialTaskRunner> serial;
  TaskRunner* runner;
  if (transport == "socket") {
    // Rank 0 of a multi-process run: fabric hub + master, everything else
    // is other OS processes rendezvousing on our port.
    SocketRunOptions socket_options = socket_options_from_args(args);
    socket_options.socket.rank = 0;
    socket_cluster =
        std::make_unique<SocketCluster>(data, model, rates, socket_options);
    std::printf("socket cluster: hub on port %u, %d workers (%d processes)\n",
                static_cast<unsigned>(socket_options.socket.port),
                socket_cluster->num_workers(), socket_options.socket.size);
    if (!socket_cluster->wait_ready(socket_options.socket.connect_timeout)) {
      std::fprintf(stderr,
                   "error: fabric incomplete after %lld ms (some rank never "
                   "announced)\n",
                   static_cast<long long>(
                       socket_options.socket.connect_timeout.count()));
      return 1;
    }
    std::printf("fabric ready: all %d ranks announced\n",
                socket_options.socket.size);
    runner = &socket_cluster->runner();
  } else if (args.has("workers")) {
    ClusterOptions cluster_options;
    cluster_options.num_workers = static_cast<int>(args.get_int("workers", 4));
    cluster_options.foreman.worker_timeout =
        std::chrono::milliseconds(args.get_int("timeout-ms", 30000));
    cluster = std::make_unique<InProcessCluster>(data, model, rates, cluster_options);
    runner = &cluster->runner();
    std::printf("parallel: %d workers (+ master/foreman/monitor)\n",
                cluster->num_workers());
  } else {
    serial = std::make_unique<SerialTaskRunner>(data, model, rates);
    runner = serial.get();
  }

  options.checkpoint_path = args.get("checkpoint", "");
  options.checkpoint_keep =
      static_cast<std::uint64_t>(args.get_int("checkpoint-keep", 3));
  options.dataset_fingerprint = alignment_fingerprint(data);
  options.stop_requested = [] { return g_stop_signal != 0; };
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  Timer timer;
  JumbleResult jumbled;
  try {
    if (args.has("resume")) {
      const std::string resume_path = args.get("resume", "");
      std::optional<RecoveredCheckpoint> recovered;
      try {
        recovered =
            recover_checkpoint(resume_path, options.dataset_fingerprint);
      } catch (const std::exception& error) {
        std::fprintf(stderr, "error: cannot resume from %s: %s\n",
                     resume_path.c_str(), error.what());
        return 1;
      }
      if (!recovered.has_value()) {
        std::fprintf(stderr, "error: no usable checkpoint at %s\n",
                     resume_path.c_str());
        return 1;
      }
      std::printf("resuming from %s (generation %llu, %d of %zu taxa placed)\n",
                  recovered->path.c_str(),
                  static_cast<unsigned long long>(recovered->generation),
                  recovered->checkpoint.next_order_index, data.num_taxa());
      // Continue checkpointing where the interrupted run left off.
      if (options.checkpoint_path.empty()) {
        options.checkpoint_path = resume_path;
      }
      options.seed = recovered->checkpoint.seed;
      jumbled.runs.push_back(
          StepwiseSearch(data, options).resume(*runner, recovered->checkpoint));
    } else {
      jumbled = run_jumbles(data, options, jumbles, *runner);
    }
  } catch (const SearchInterrupted& interrupted) {
    std::printf("\ninterrupted by signal %d; run is resumable at checkpoint "
                "generation %llu (--resume=%s)\n",
                static_cast<int>(g_stop_signal),
                static_cast<unsigned long long>(interrupted.generation()),
                options.checkpoint_path.c_str());
    return 130;
  }
  const SearchResult& best = jumbled.runs[jumbled.best_index];
  std::printf("\n%d ordering(s), %.1fs: best ln L = %.4f "
              "(%zu trees evaluated in the best run)\n",
              jumbles, timer.seconds(), best.best_log_likelihood,
              best.trees_evaluated);
  for (std::size_t k = 0; k < jumbled.runs.size(); ++k) {
    std::printf("  order %2zu: ln L = %.4f%s\n", k,
                jumbled.runs[k].best_log_likelihood,
                k == jumbled.best_index ? "  <- best" : "");
  }

  const Tree tree = tree_from_newick(best.best_newick, data.names());
  if (!args.get_bool("quiet")) {
    GeneralTree display = GeneralTree::from_tree(tree, data.names());
    display.canonicalize();
    std::printf("\n%s\n", render_ascii(display).c_str());
  }
  std::printf("Newick: %s\n", to_newick(tree, data.names(), 6).c_str());

  if (args.has("out")) {
    std::ofstream out(args.get("out", ""));
    out << to_newick(tree, data.names(), 10) << "\n";
    std::printf("wrote %s\n", args.get("out", "").c_str());
  }
  if (args.has("svg") && jumbles > 1) {
    std::vector<GeneralTree> panels;
    std::vector<std::string> titles;
    for (std::size_t k = 0; k < jumbled.runs.size(); ++k) {
      panels.push_back(GeneralTree::from_tree(
          tree_from_newick(jumbled.runs[k].best_newick, data.names()),
          data.names()));
      titles.push_back("order " + std::to_string(k));
    }
    std::ofstream out(args.get("svg", ""));
    out << render_comparison_svg(panels, {data.names().front()}, titles);
    std::printf("wrote %s\n", args.get("svg", "").c_str());
  }
  if (cluster != nullptr) {
    const MonitorReport report = cluster->monitor_report();
    std::printf("\nmonitor: %llu rounds, %llu tasks, %llu requeues\n",
                static_cast<unsigned long long>(report.rounds),
                static_cast<unsigned long long>(report.completions),
                static_cast<unsigned long long>(report.requeues));
  }
  if (socket_cluster != nullptr) {
    socket_cluster->shutdown();  // drain the peers before reading stats
    const SocketFabricStats fabric = socket_cluster->fabric_stats();
    std::printf("\nfabric: %llu frames out / %llu in, %llu peer deaths, "
                "%llu dropped\n",
                static_cast<unsigned long long>(fabric.frames_sent),
                static_cast<unsigned long long>(fabric.frames_received),
                static_cast<unsigned long long>(fabric.peer_deaths),
                static_cast<unsigned long long>(fabric.frames_dropped));
  }
  if (!trace_out.empty()) {
    if (cluster != nullptr) cluster->shutdown();  // stable final spans
    obs::Tracer::instance().disable();
    const obs::TraceLog log = obs::Tracer::instance().drain();
    std::ofstream out(trace_out);
    log.write_chrome(out);
    if (!out) {
      std::fprintf(stderr, "error writing %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote trace: %s (%zu events, %llu dropped)\n",
                trace_out.c_str(), log.events.size(),
                static_cast<unsigned long long>(log.dropped_events));
  }
  return 0;
}
