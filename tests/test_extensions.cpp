// Tests for the paper's future-work features implemented as extensions:
// in-code bootstrap, adaptive rearrangement extents, and speculative
// dispatch across rearrangement barriers.
#include <gtest/gtest.h>

#include <set>

#include "model/simulate.hpp"
#include "search/bootstrap.hpp"
#include "search/search.hpp"
#include "simcluster/simulator.hpp"
#include "simcluster/workload.hpp"
#include "tree/newick.hpp"
#include "tree/random.hpp"
#include "tree/splits.hpp"

namespace fdml {
namespace {

// --- bootstrap ---

TEST(Bootstrap, WeightsAreMultinomial) {
  Rng rng(3);
  const std::size_t sites = 500;
  const auto weights = bootstrap_site_weights(sites, rng);
  ASSERT_EQ(weights.size(), sites);
  long total = 0;
  std::size_t zeros = 0;
  for (int w : weights) {
    EXPECT_GE(w, 0);
    total += w;
    if (w == 0) ++zeros;
  }
  EXPECT_EQ(total, static_cast<long>(sites));
  // ~ 1/e of sites drop out of a bootstrap replicate.
  EXPECT_NEAR(static_cast<double>(zeros) / sites, 0.368, 0.06);
}

TEST(Bootstrap, WeightsDifferAcrossDraws) {
  Rng rng(3);
  const auto a = bootstrap_site_weights(200, rng);
  const auto b = bootstrap_site_weights(200, rng);
  EXPECT_NE(a, b);
}

TEST(Bootstrap, StrongSignalGetsHighSupport) {
  Rng rng(11);
  Tree truth = random_yule_tree(8, rng);
  SimulateOptions options;
  options.num_sites = 800;  // plenty of signal
  const Alignment alignment =
      simulate_alignment(truth, default_taxon_names(8), SubstModel::jc69(),
                         RateModel::uniform(), options, rng);

  BootstrapOptions boot;
  boot.replicates = 8;
  boot.seed = 5;
  const BootstrapResult result = run_bootstrap(
      alignment, SubstModel::jc69(), RateModel::uniform(), boot);
  ASSERT_EQ(result.replicate_trees.size(), 8u);
  ASSERT_FALSE(result.split_support.empty());
  // Out-of-bag diagnostic: every replicate tree re-scored on the original
  // data. Values are finite log-likelihoods, and no replicate tree can beat
  // the data it was not fit to by an implausible margin — each must score
  // within a sane band of the replicate's own (resampled-data) score.
  ASSERT_EQ(result.full_data_log_likelihoods.size(), 8u);
  for (std::size_t r = 0; r < 8; ++r) {
    const double full = result.full_data_log_likelihoods[r];
    EXPECT_TRUE(std::isfinite(full));
    EXPECT_LT(full, 0.0);
    EXPECT_NEAR(full, result.replicate_log_likelihoods[r],
                0.5 * std::abs(result.replicate_log_likelihoods[r]));
  }
  // With this much signal the top splits are (nearly) unanimous.
  EXPECT_GE(result.split_support.front().frequency, 0.9);
  // Consensus supports are bootstrap proportions in (0, 1].
  for (int id : result.consensus.preorder()) {
    if (result.consensus.is_leaf(id) || id == result.consensus.root()) continue;
    const double support = result.consensus.node(id).support;
    EXPECT_GT(support, 0.5);
    EXPECT_LE(support, 1.0 + 1e-12);
  }
  // Replicates mostly recover the generating topology.
  int close = 0;
  for (const Tree& tree : result.replicate_trees) {
    if (robinson_foulds(tree, truth) <= 2) ++close;
  }
  EXPECT_GE(close, 6);
}

TEST(Bootstrap, DeterministicForSeed) {
  Rng rng(13);
  Tree truth = random_yule_tree(6, rng);
  SimulateOptions options;
  options.num_sites = 150;
  const Alignment alignment =
      simulate_alignment(truth, default_taxon_names(6), SubstModel::jc69(),
                         RateModel::uniform(), options, rng);
  BootstrapOptions boot;
  boot.replicates = 3;
  boot.seed = 9;
  const BootstrapResult a =
      run_bootstrap(alignment, SubstModel::jc69(), RateModel::uniform(), boot);
  const BootstrapResult b =
      run_bootstrap(alignment, SubstModel::jc69(), RateModel::uniform(), boot);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(a.replicate_log_likelihoods[r],
                     b.replicate_log_likelihoods[r]);
    EXPECT_DOUBLE_EQ(a.full_data_log_likelihoods[r],
                     b.full_data_log_likelihoods[r]);
    EXPECT_EQ(robinson_foulds(a.replicate_trees[r], b.replicate_trees[r]), 0);
  }
}

// --- adaptive rearrangement ---

TEST(Adaptive, EscalationNeverHurtsLikelihood) {
  Rng rng(21);
  Tree truth = random_yule_tree(10, rng);
  SimulateOptions sim;
  sim.num_sites = 300;
  const Alignment alignment =
      simulate_alignment(truth, default_taxon_names(10), SubstModel::jc69(),
                         RateModel::uniform(), sim, rng);
  const PatternAlignment data(alignment);
  SerialTaskRunner runner(data, SubstModel::jc69(), RateModel::uniform());

  SearchOptions plain;
  plain.seed = 7;
  SearchOptions adaptive = plain;
  adaptive.adaptive_max_cross = 4;
  const SearchResult base = StepwiseSearch(data, plain).run(runner);
  const SearchResult escalated = StepwiseSearch(data, adaptive).run(runner);
  EXPECT_GE(escalated.best_log_likelihood, base.best_log_likelihood - 1e-9);
  EXPECT_GE(escalated.trees_evaluated, base.trees_evaluated)
      << "escalation evaluates extra widened rounds";
}

TEST(Adaptive, WidenedRoundsAppearInTrace) {
  Rng rng(23);
  Tree truth = random_yule_tree(9, rng);
  SimulateOptions sim;
  sim.num_sites = 200;
  const Alignment alignment =
      simulate_alignment(truth, default_taxon_names(9), SubstModel::jc69(),
                         RateModel::uniform(), sim, rng);
  const PatternAlignment data(alignment);
  SerialTaskRunner runner(data, SubstModel::jc69(), RateModel::uniform());
  SearchOptions options;
  options.seed = 7;
  options.adaptive_max_cross = 4;
  const SearchResult result = StepwiseSearch(data, options).run(runner);
  // At k=1 a rearrange round has at most 2n-6 = 12 candidates at n=9; a
  // widened (k>1) round exceeds that.
  std::size_t widest = 0;
  for (const auto& round : result.trace.rounds) {
    if (round.kind == RoundKind::kRearrange) {
      widest = std::max(widest, round.task_cpu_seconds.size());
    }
  }
  EXPECT_GT(widest, 12u) << "adaptive escalation should widen some round";
}

// --- speculative dispatch ---

SearchTrace speculative_fixture_trace() {
  WorkloadModel model;
  model.cost_noise_cv = 0.2;
  Rng rng(5);
  return synthesize_trace(30, 1000, 1, model, rng);
}

TEST(Speculation, NeverSlowerAndBoundedByNormal) {
  const SearchTrace trace = speculative_fixture_trace();
  for (int p : {8, 16, 64}) {
    SimClusterConfig config;
    config.processors = p;
    const double normal = simulate_trace(trace, config).wall_seconds;
    const SpeculativeResult spec = simulate_trace_speculative(trace, config);
    EXPECT_LE(spec.sim.wall_seconds, normal + 1e-9) << p << " processors";
    EXPECT_GT(spec.sim.wall_seconds, 0.5 * normal)
        << "speculation cannot halve the time of a compute-bound trace";
    EXPECT_GT(spec.speculated_rounds, 0u);
    EXPECT_LE(spec.wasted_speculations, spec.speculated_rounds);
  }
}

TEST(Speculation, SerialUnaffected) {
  const SearchTrace trace = speculative_fixture_trace();
  SimClusterConfig config;
  config.processors = 1;
  const double normal = simulate_trace(trace, config).wall_seconds;
  const SpeculativeResult spec = simulate_trace_speculative(trace, config);
  EXPECT_DOUBLE_EQ(spec.sim.wall_seconds, normal);
  EXPECT_EQ(spec.speculated_rounds, 0u);
}

TEST(Speculation, WastedCountMatchesImprovingRounds) {
  const SearchTrace trace = speculative_fixture_trace();
  // Count rearrangement rounds followed by another rearrangement round at
  // the same taxon count (= rounds that improved the tree).
  std::size_t improving = 0;
  std::size_t rearrange_with_successor = 0;
  for (std::size_t r = 0; r + 1 < trace.rounds.size(); ++r) {
    if (trace.rounds[r].kind != RoundKind::kRearrange) continue;
    ++rearrange_with_successor;
    if (trace.rounds[r + 1].kind == RoundKind::kRearrange &&
        trace.rounds[r + 1].taxa_in_tree == trace.rounds[r].taxa_in_tree) {
      ++improving;
    }
  }
  SimClusterConfig config;
  config.processors = 16;
  const SpeculativeResult spec = simulate_trace_speculative(trace, config);
  EXPECT_EQ(spec.wasted_speculations, improving);
  EXPECT_EQ(spec.speculated_rounds, rearrange_with_successor +
                                        (trace.rounds.back().kind ==
                                                 RoundKind::kRearrange
                                             ? 0u
                                             : 0u));
}

}  // namespace
}  // namespace fdml
