// Tests for the sequence substrate: alphabet, alignment container, pattern
// compression, PHYLIP and FASTA I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "seq/alignment.hpp"
#include "seq/alphabet.hpp"
#include "seq/phylip.hpp"

namespace fdml {
namespace {

TEST(Alphabet, SingleBases) {
  EXPECT_EQ(char_to_code('A'), kBaseA);
  EXPECT_EQ(char_to_code('c'), kBaseC);
  EXPECT_EQ(char_to_code('G'), kBaseG);
  EXPECT_EQ(char_to_code('t'), kBaseT);
  EXPECT_EQ(char_to_code('U'), kBaseT) << "RNA uracil maps to T";
}

TEST(Alphabet, AmbiguityCodes) {
  EXPECT_EQ(char_to_code('R'), kBaseA | kBaseG);
  EXPECT_EQ(char_to_code('Y'), kBaseC | kBaseT);
  EXPECT_EQ(char_to_code('N'), kBaseUnknown);
  EXPECT_EQ(char_to_code('-'), kBaseUnknown) << "gaps are missing data";
  EXPECT_EQ(char_to_code('?'), kBaseUnknown);
  EXPECT_EQ(char_to_code('Z'), 0) << "invalid characters map to 0";
}

TEST(Alphabet, RoundTripThroughChar) {
  for (int code = 1; code <= 15; ++code) {
    const char c = code_to_char(static_cast<BaseCode>(code));
    EXPECT_EQ(char_to_code(c), code) << "code " << code << " char " << c;
  }
}

TEST(Alphabet, CardinalityAndAmbiguity) {
  EXPECT_TRUE(is_unambiguous(kBaseA));
  EXPECT_FALSE(is_unambiguous(kBaseA | kBaseG));
  EXPECT_EQ(base_cardinality(kBaseUnknown), 4);
  EXPECT_EQ(base_cardinality(kBaseA | kBaseC | kBaseT), 3);
}

TEST(Alphabet, StringConversionRejectsGarbage) {
  EXPECT_EQ(codes_to_string(string_to_codes("ACGTN-")), "ACGTNN");
  EXPECT_THROW(string_to_codes("ACJT"), std::invalid_argument);
}

TEST(Alignment, EnforcesInvariants) {
  Alignment alignment;
  alignment.add_sequence("a", string_to_codes("ACGT"));
  EXPECT_THROW(alignment.add_sequence("b", string_to_codes("ACG")),
               std::invalid_argument);
  EXPECT_THROW(alignment.add_sequence("a", string_to_codes("ACGT")),
               std::invalid_argument);
  EXPECT_THROW(alignment.add_sequence("", string_to_codes("ACGT")),
               std::invalid_argument);
  alignment.add_sequence("b", string_to_codes("AAAA"));
  EXPECT_EQ(alignment.num_taxa(), 2u);
  EXPECT_EQ(alignment.num_sites(), 4u);
  EXPECT_EQ(alignment.find_taxon("b"), 1);
  EXPECT_EQ(alignment.find_taxon("zzz"), -1);
}

TEST(Alignment, BaseFrequenciesCountFractionalAmbiguity) {
  Alignment alignment;
  alignment.add_sequence("a", string_to_codes("AACC"));
  alignment.add_sequence("b", string_to_codes("RRNN"));  // R = A/G, N skipped
  const Vec4 freq = alignment.base_frequencies();
  // Counts: A: 2 + 2*0.5 = 3, C: 2, G: 2*0.5 = 1, T: 0 -> total 6.
  EXPECT_NEAR(freq[0], 3.0 / 6.0, 1e-12);
  EXPECT_NEAR(freq[1], 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(freq[2], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(freq[3], 0.0, 1e-12);
}

TEST(Alignment, SubsetOperations) {
  Alignment alignment;
  alignment.add_sequence("a", string_to_codes("ACGTAC"));
  alignment.add_sequence("b", string_to_codes("TTGGCC"));
  alignment.add_sequence("c", string_to_codes("AAAAAA"));
  const Alignment taxa = alignment.subset_taxa({2, 0});
  EXPECT_EQ(taxa.num_taxa(), 2u);
  EXPECT_EQ(taxa.name(0), "c");
  const Alignment sites = alignment.subset_sites(2, 3);
  EXPECT_EQ(sites.num_sites(), 3u);
  EXPECT_EQ(codes_to_string(sites.row(0)), "GTA");
  EXPECT_THROW(alignment.subset_sites(4, 5), std::out_of_range);
}

TEST(Patterns, MergesIdenticalColumns) {
  Alignment alignment;
  alignment.add_sequence("a", string_to_codes("AAGA"));
  alignment.add_sequence("b", string_to_codes("CCGC"));
  alignment.add_sequence("c", string_to_codes("GGGG"));
  const PatternAlignment patterns(alignment);
  // Columns 0, 1, 3 identical; column 2 distinct.
  EXPECT_EQ(patterns.num_patterns(), 2u);
  EXPECT_EQ(patterns.num_sites(), 4u);
  EXPECT_DOUBLE_EQ(patterns.total_weight(), 4.0);
  const std::size_t p0 = patterns.pattern_of_site(0);
  EXPECT_EQ(patterns.pattern_of_site(1), p0);
  EXPECT_EQ(patterns.pattern_of_site(3), p0);
  EXPECT_NE(patterns.pattern_of_site(2), p0);
  EXPECT_DOUBLE_EQ(patterns.weight(p0), 3.0);
}

TEST(Patterns, HonorsSiteWeights) {
  Alignment alignment;
  alignment.add_sequence("a", string_to_codes("ACG"));
  alignment.add_sequence("b", string_to_codes("ACG"));
  alignment.add_sequence("c", string_to_codes("ACG"));
  const PatternAlignment patterns(alignment, {2, 0, 5});
  EXPECT_EQ(patterns.num_patterns(), 2u);
  EXPECT_DOUBLE_EQ(patterns.total_weight(), 7.0);
  EXPECT_THROW(PatternAlignment(alignment, {1, 1}), std::invalid_argument);
  EXPECT_THROW(PatternAlignment(alignment, {1, -1, 1}), std::invalid_argument);
}

TEST(Patterns, AmbiguityDistinguishesPatterns) {
  Alignment alignment;
  alignment.add_sequence("a", string_to_codes("AA"));
  alignment.add_sequence("b", string_to_codes("AR"));
  alignment.add_sequence("c", string_to_codes("AA"));
  const PatternAlignment patterns(alignment);
  EXPECT_EQ(patterns.num_patterns(), 2u) << "A and R columns must not merge";
}

constexpr const char* kInterleaved =
    " 3 12\n"
    "Homo       AAGCTT CACCGG\n"
    "Pan        AAGCTT TACCGG\n"
    "Gorilla    AAGCTT CACTGG\n";

constexpr const char* kInterleavedTwoBlocks =
    " 3 12\n"
    "Homo       AAGCTT\n"
    "Pan        AAGCTT\n"
    "Gorilla    AAGCTT\n"
    "\n"
    "CACCGG\n"
    "TACCGG\n"
    "CACTGG\n";

constexpr const char* kSequential =
    "3 12\n"
    "Homo\n"
    "AAGCTT\n"
    "CACCGG\n"
    "Pan\n"
    "AAGCTTTACCGG\n"
    "Gorilla\n"
    "AAGCTT CACTGG\n";

TEST(Phylip, ReadsInterleavedSingleBlock) {
  const Alignment a = read_phylip_string(kInterleaved);
  EXPECT_EQ(a.num_taxa(), 3u);
  EXPECT_EQ(a.num_sites(), 12u);
  EXPECT_EQ(a.name(1), "Pan");
  EXPECT_EQ(codes_to_string(a.row(0)), "AAGCTTCACCGG");
}

TEST(Phylip, ReadsInterleavedMultipleBlocks) {
  const Alignment a = read_phylip_string(kInterleavedTwoBlocks);
  EXPECT_EQ(codes_to_string(a.row(2)), "AAGCTTCACTGG");
}

TEST(Phylip, ReadsSequentialViaAutoFallback) {
  const Alignment a = read_phylip_string(kSequential);
  EXPECT_EQ(a.num_taxa(), 3u);
  EXPECT_EQ(codes_to_string(a.row(1)), "AAGCTTTACCGG");
}

TEST(Phylip, AllThreeLayoutsAgree) {
  const Alignment a = read_phylip_string(kInterleaved, PhylipLayout::kInterleaved);
  const Alignment b = read_phylip_string(kInterleavedTwoBlocks, PhylipLayout::kInterleaved);
  const Alignment c = read_phylip_string(kSequential, PhylipLayout::kSequential);
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a == c);
}

TEST(Phylip, RejectsMalformedInput) {
  EXPECT_THROW(read_phylip_string("garbage\n"), std::runtime_error);
  EXPECT_THROW(read_phylip_string(" 2 4\nA AAAA\nB AAAA\n"), std::runtime_error)
      << "fewer than 3 taxa";
  EXPECT_THROW(read_phylip_string(" 3 8\nA AAAA\nB AAAA\nC AAAA\n"),
               std::runtime_error)
      << "declared more sites than provided";
}

TEST(Phylip, WriteReadRoundTripBothLayouts) {
  Alignment alignment;
  alignment.add_sequence("alpha", string_to_codes(std::string(130, 'A') + "CGT"));
  alignment.add_sequence("beta_long_name", string_to_codes(std::string(130, 'C') + "GTA"));
  alignment.add_sequence("g", string_to_codes(std::string(130, 'G') + "TAC"));
  for (PhylipLayout layout : {PhylipLayout::kInterleaved, PhylipLayout::kSequential}) {
    std::ostringstream out;
    write_phylip(out, alignment, layout);
    const Alignment back = read_phylip_string(out.str(), layout);
    EXPECT_TRUE(alignment == back);
  }
}

TEST(Fasta, RoundTrip) {
  Alignment alignment;
  alignment.add_sequence("seq1", string_to_codes("ACGTRYN"));
  alignment.add_sequence("seq2", string_to_codes("TTTTTTT"));
  std::ostringstream out;
  write_fasta(out, alignment);
  std::istringstream in(out.str());
  const Alignment back = read_fasta(in);
  // N and gaps both canonicalize to N; compare canonical forms.
  EXPECT_EQ(back.num_taxa(), 2u);
  EXPECT_EQ(codes_to_string(back.row(0)), codes_to_string(alignment.row(0)));
}

TEST(Fasta, RejectsDataBeforeHeader) {
  std::istringstream in("ACGT\n>late\nACGT\n");
  EXPECT_THROW(read_fasta(in), std::runtime_error);
}

}  // namespace
}  // namespace fdml
