// Tests for the tree substrate: structure and editing operations, Newick
// round trips, splits / Robinson-Foulds, consensus, topology counting and
// rearrangement enumeration.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "tree/consensus.hpp"
#include "tree/counting.hpp"
#include "tree/general_tree.hpp"
#include "tree/neighborhood.hpp"
#include "tree/newick.hpp"
#include "tree/random.hpp"
#include "tree/splits.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace fdml {
namespace {

std::vector<std::string> names_for(int n) {
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) names.push_back("t" + std::to_string(i));
  return names;
}

TEST(Tree, TripletInvariants) {
  Tree tree(5);
  const int center = tree.make_triplet(0, 1, 2);
  tree.check_valid();
  EXPECT_EQ(tree.tip_count(), 3);
  EXPECT_EQ(tree.num_edges(), 3);
  EXPECT_TRUE(tree.adjacent(0, center));
  EXPECT_FALSE(tree.contains(3));
  EXPECT_EQ(tree.tips(), (std::vector<int>{0, 1, 2}));
}

TEST(Tree, InsertTipGrowsEdgeCount) {
  Tree tree(6);
  tree.make_triplet(0, 1, 2);
  for (int tip = 3; tip < 6; ++tip) {
    const auto edges = tree.edges();
    EXPECT_EQ(static_cast<int>(edges.size()), 2 * tip - 3)
        << "2n-3 edges before inserting tip " << tip;
    tree.insert_tip(tip, edges[0].first, edges[0].second);
    tree.check_valid();
  }
  EXPECT_EQ(tree.tip_count(), 6);
  EXPECT_EQ(tree.num_edges(), 9);
}

TEST(Tree, InsertPreservesPathLength) {
  Tree tree(4);
  tree.make_triplet(0, 1, 2, 0.5, 0.5, 0.3);
  const double before = tree.length(0, tree.neighbor(0, 0));
  const int mid = tree.insert_tip(3, 0, tree.neighbor(0, 0), 0.1, 0.25);
  const double left = tree.length(0, mid);
  const double right = tree.length(mid, tree.neighbor(0, 0) == mid
                                             ? tree.neighbor(mid, 1)
                                             : tree.neighbor(0, 0));
  EXPECT_NEAR(left + right, before, 1e-12);
  EXPECT_NEAR(left, 0.25 * before, 1e-12);
}

TEST(Tree, RemoveTipInvertsInsert) {
  Rng rng(77);
  Tree tree = random_tree(10, rng);
  tree.check_valid();
  const auto edges_before = tree.edges();
  const std::uint64_t hash_before = topology_hash(tree);
  // Insert is exercised by random_tree; removing a tip must restore counts.
  Tree grown = tree;
  // remove and reinsert tip 7 on the same edge; topology must return.
  const int attach = grown.neighbor(7, 0);
  int a = -1;
  int b = -1;
  for (int s = 0; s < 3; ++s) {
    const int nbr = grown.neighbor(attach, s);
    if (nbr == 7) continue;
    (a < 0 ? a : b) = nbr;
  }
  grown.remove_tip(7);
  grown.check_valid();
  EXPECT_EQ(grown.tip_count(), 9);
  grown.insert_tip(7, a, b);
  grown.check_valid();
  EXPECT_EQ(grown.edges().size(), edges_before.size());
  EXPECT_EQ(topology_hash(grown), hash_before);
}

TEST(Tree, RemoveTipRefusesToCollapse) {
  Tree tree(4);
  tree.make_triplet(0, 1, 2);
  EXPECT_THROW(tree.remove_tip(0), std::logic_error);
}

TEST(Tree, PruneRegraftBackIsIdentity) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    Tree tree = random_tree(12, rng);
    const std::uint64_t hash = topology_hash(tree);
    // Pick a random internal junction and subtree side.
    std::vector<std::pair<int, int>> choices;
    for (int j = tree.num_taxa(); j < tree.max_nodes(); ++j) {
      if (!tree.contains(j)) continue;
      for (int s = 0; s < 3; ++s) choices.emplace_back(j, tree.neighbor(j, s));
    }
    const auto [junction, side] = choices[rng.below(choices.size())];
    const auto handle = tree.prune_subtree(junction, side);
    tree.regraft_back(handle);
    tree.check_valid();
    EXPECT_EQ(topology_hash(tree), hash);
    EXPECT_NEAR(tree.length(junction, handle.left), handle.left_length, 1e-12);
    EXPECT_NEAR(tree.length(junction, handle.right), handle.right_length, 1e-12);
  }
}

TEST(Tree, RegraftAndUndoRestoresTopology) {
  Rng rng(321);
  Tree tree = random_tree(10, rng);
  const std::uint64_t original = topology_hash(tree);
  const int junction = tree.any_internal();
  const int side = tree.neighbor(junction, 0);
  const auto handle = tree.prune_subtree(junction, side);
  // Valid regraft targets are edges of the *remaining* component — mark the
  // pruned component (junction + subtree) and skip edges touching it.
  std::vector<char> pruned(static_cast<std::size_t>(tree.max_nodes()), 0);
  std::vector<int> stack{junction};
  pruned[static_cast<std::size_t>(junction)] = 1;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    for (int s = 0; s < 3; ++s) {
      const int nbr = tree.neighbor(node, s);
      if (nbr == Tree::kNoNode || pruned[static_cast<std::size_t>(nbr)]) continue;
      pruned[static_cast<std::size_t>(nbr)] = 1;
      stack.push_back(nbr);
    }
  }
  for (const auto& [u, v] : tree.edges()) {
    if (pruned[static_cast<std::size_t>(u)] || pruned[static_cast<std::size_t>(v)]) {
      continue;
    }
    const auto undo = tree.regraft(handle, u, v);
    tree.check_valid();
    EXPECT_EQ(tree.tip_count(), 10);
    tree.undo_regraft(handle, undo);
  }
  tree.regraft_back(handle);
  tree.check_valid();
  EXPECT_EQ(topology_hash(tree), original);
}

TEST(Tree, CollectSubtreeTips) {
  Tree tree(5);
  const int c = tree.make_triplet(0, 1, 2);
  const int m = tree.insert_tip(3, 0, c);
  std::vector<int> tips;
  tree.collect_subtree_tips(m, c, tips);
  std::set<int> got(tips.begin(), tips.end());
  EXPECT_EQ(got, (std::set<int>{0, 3}));
}

TEST(RandomTree, UniformTopologyIsValidAtManySizes) {
  Rng rng(5);
  for (int n : {3, 4, 5, 8, 16, 33, 64}) {
    Tree tree = random_tree(n, rng);
    tree.check_valid();
    EXPECT_EQ(tree.tip_count(), n);
    EXPECT_EQ(tree.num_edges(), 2 * n - 3);
  }
}

TEST(RandomTree, YuleTreeIsValid) {
  Rng rng(6);
  Tree tree = random_yule_tree(40, rng);
  tree.check_valid();
  EXPECT_EQ(tree.tip_count(), 40);
}

// --- Newick ---

TEST(Newick, ParsesBasicRootedTree) {
  const GeneralTree tree = parse_newick("((a:1,b:2):0.5,c:3);");
  EXPECT_EQ(tree.leaf_count(), 3u);
  EXPECT_DOUBLE_EQ(tree.max_depth(), 3.0);
}

TEST(Newick, ParsesQuotedLabelsAndComments) {
  const GeneralTree tree =
      parse_newick("('taxon one':1,[comment [nested]](b:1,'it''s':2)0.9:1);");
  const auto leaves = tree.leaves();
  EXPECT_EQ(leaves.size(), 3u);
  EXPECT_EQ(tree.node(leaves[0]).label, "taxon one");
  EXPECT_EQ(tree.node(leaves[2]).label, "it's");
}

TEST(Newick, RejectsMalformed) {
  EXPECT_THROW(parse_newick("((a,b);"), std::runtime_error);
  EXPECT_THROW(parse_newick("(a,,b);"), std::runtime_error);
  EXPECT_THROW(parse_newick("(a:1,b:xyz);"), std::runtime_error);
}

TEST(Newick, UnrootedRoundTripPreservesTopologyAndLengths) {
  Rng rng(9);
  const auto names = names_for(12);
  for (int trial = 0; trial < 8; ++trial) {
    Tree tree = random_tree(12, rng);
    const std::string text = to_newick(tree, names, 17);
    const Tree back = tree_from_newick(text, names);
    EXPECT_EQ(robinson_foulds(tree, back), 0) << text;
    // Lengths survive: compare the sorted multiset of all branch lengths.
    std::multiset<double> la;
    std::multiset<double> lb;
    for (const auto& [u, v] : tree.edges()) la.insert(tree.length(u, v));
    for (const auto& [u, v] : back.edges()) lb.insert(back.length(u, v));
    auto ia = la.begin();
    auto ib = lb.begin();
    for (; ia != la.end(); ++ia, ++ib) EXPECT_NEAR(*ia, *ib, 1e-15);
  }
}

TEST(Newick, RootedInputIsUnrooted) {
  const auto names = names_for(4);
  const Tree tree = tree_from_newick("((t0:1,t1:1):0.5,(t2:1,t3:1):0.5);", names);
  tree.check_valid();
  EXPECT_EQ(tree.tip_count(), 4);
  EXPECT_EQ(tree.num_edges(), 5);
}

TEST(Newick, UnknownTaxonThrows) {
  EXPECT_THROW(tree_from_newick("(bogus:1,t1:1,t2:1);", names_for(3)),
               std::runtime_error);
}

TEST(Newick, SubsetOfTaxaIsAllowed) {
  // Stepwise-addition tasks serialize trees over a subset of the taxon set.
  const auto names = names_for(10);
  const Tree tree = tree_from_newick("(t0:1,t5:1,(t7:1,t9:2):1);", names);
  EXPECT_EQ(tree.tip_count(), 4);
  EXPECT_TRUE(tree.contains(9));
  EXPECT_FALSE(tree.contains(1));
}

// --- splits / RF ---

TEST(Splits, CountsAndOrientation) {
  const auto names = names_for(6);
  const Tree tree = tree_from_newick(
      "((t0:1,t1:1):1,(t2:1,t3:1):1,(t4:1,t5:1):1);", names);
  const auto splits = tree_splits(tree);
  EXPECT_EQ(splits.size(), 3u) << "n-3 nontrivial splits";
  int pairs = 0;
  for (const auto& split : splits) {
    EXPECT_FALSE(split.test(0)) << "canonical side excludes the lowest taxon";
    // Each split separates a cherry: its canonical side has 2 taxa, except
    // the {t0,t1} cherry which is stored as its 4-taxon complement.
    EXPECT_TRUE(split.count() == 2 || split.count() == 4);
    if (split.count() == 2) ++pairs;
  }
  EXPECT_EQ(pairs, 2);
}

TEST(Splits, CompatibilityWithinOneTree) {
  Rng rng(31);
  const Tree tree = random_tree(20, rng);
  const auto splits = tree_splits(tree);
  for (std::size_t i = 0; i < splits.size(); ++i) {
    for (std::size_t j = i + 1; j < splits.size(); ++j) {
      EXPECT_TRUE(splits[i].compatible_with(splits[j]));
    }
  }
}

TEST(Splits, RobinsonFouldsAxioms) {
  Rng rng(13);
  const Tree a = random_tree(16, rng);
  const Tree b = random_tree(16, rng);
  const Tree c = random_tree(16, rng);
  EXPECT_EQ(robinson_foulds(a, a), 0);
  EXPECT_EQ(robinson_foulds(a, b), robinson_foulds(b, a));
  EXPECT_LE(robinson_foulds(a, c), robinson_foulds(a, b) + robinson_foulds(b, c))
      << "triangle inequality";
  EXPECT_LE(robinson_foulds_normalized(a, b), 1.0);
}

TEST(Splits, NniChangesRfByTwo) {
  Rng rng(17);
  Tree tree = random_tree(10, rng);
  const Tree original = tree;
  // One NNI: prune a subtree and regraft across one internal vertex.
  const auto moves = rearrangement_moves(tree, 1);
  ASSERT_FALSE(moves.empty());
  bool found_nni = false;
  for (const auto& move : moves) {
    Tree candidate = tree;
    const auto handle = candidate.prune_subtree(move.junction, move.subtree_neighbor);
    candidate.regraft(handle, move.target_u, move.target_v);
    candidate.check_valid();
    const int rf = robinson_foulds(original, candidate);
    EXPECT_GE(rf, 0);
    EXPECT_LE(rf, 2) << "crossing one vertex changes at most one split";
    if (rf == 2) found_nni = true;
  }
  EXPECT_TRUE(found_nni);
}

TEST(Splits, TopologyHashInsensitiveToLengthsAndRepresentation) {
  const auto names = names_for(5);
  const Tree a = tree_from_newick("(t0:1,(t1:2,(t2:3,t3:4):5):6,t4:7);", names);
  const Tree b = tree_from_newick("((t3:9,t2:9):9,(t0:9,t4:9):9,t1:9);", names);
  EXPECT_EQ(robinson_foulds(a, b), 0);
  EXPECT_EQ(topology_hash(a), topology_hash(b));
}

TEST(Splits, TopologyHashSeparatesDifferentTopologies) {
  const auto names = names_for(5);
  const Tree a = tree_from_newick("(t0:1,(t1:1,(t2:1,t3:1):1):1,t4:1);", names);
  const Tree b = tree_from_newick("(t0:1,(t2:1,(t1:1,t3:1):1):1,t4:1);", names);
  EXPECT_NE(topology_hash(a), topology_hash(b));
}

// --- counting ---

TEST(Counting, MatchesPaperFigures) {
  // The paper quotes 2.8e74 (50 taxa), 1.7e182 (100 taxa) and "4.2e284"
  // (150 taxa). The 150-taxon exponent is a typo in the paper: (2*150-5)!!
  // = 4.2e301 — the mantissa matches, the exponent doesn't (the 50- and
  // 100-taxon values confirm the formula).
  EXPECT_NEAR(count_unrooted_topologies(50).log10(), std::log10(2.8) + 74, 0.05);
  EXPECT_NEAR(count_unrooted_topologies(100).log10(), std::log10(1.7) + 182, 0.05);
  EXPECT_NEAR(count_unrooted_topologies(150).log10(), std::log10(4.2) + 301, 0.05);
}

TEST(Counting, SmallCasesExact) {
  EXPECT_NEAR(count_unrooted_topologies(3).value(), 1.0, 1e-9);
  EXPECT_NEAR(count_unrooted_topologies(4).value(), 3.0, 1e-9);
  EXPECT_NEAR(count_unrooted_topologies(5).value(), 15.0, 1e-9);
  EXPECT_NEAR(count_unrooted_topologies(6).value(), 105.0, 1e-7);
  EXPECT_NEAR(count_rooted_topologies(3).value(), 3.0, 1e-9);
  EXPECT_NEAR(count_rooted_topologies(4).value(), 15.0, 1e-9);
}

TEST(Counting, InsertionPointsFormula) {
  // Adding the i-th taxon offers 2i-5 branches (paper step 3).
  EXPECT_EQ(insertion_points(4), 3);
  EXPECT_EQ(insertion_points(10), 15);
  // Cross-check against the actual tree: edges before inserting tip i
  // number 2(i-1)-3 = 2i-5.
  Rng rng(3);
  for (int i = 4; i <= 12; ++i) {
    Tree tree = random_tree(i - 1, rng);
    EXPECT_EQ(static_cast<int>(tree.edges().size()), insertion_points(i));
  }
}

// --- rearrangement enumeration ---

class RearrangementCount : public ::testing::TestWithParam<int> {};

TEST_P(RearrangementCount, DistinctTopologiesAtKOneIsTwoNMinusSix) {
  const int n = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(n));
  Tree tree = random_tree(n, rng);
  const std::uint64_t original = topology_hash(tree);
  std::set<std::uint64_t> seen;
  for (const auto& move : rearrangement_moves(tree, 1)) {
    Tree candidate = tree;
    const auto handle = candidate.prune_subtree(move.junction, move.subtree_neighbor);
    candidate.regraft(handle, move.target_u, move.target_v);
    candidate.check_valid();
    const std::uint64_t hash = topology_hash(candidate);
    if (hash != original) seen.insert(hash);
  }
  // The paper: "By default one internal node is crossed, in which case
  // (2i-6) topologically different trees result."
  EXPECT_EQ(static_cast<int>(seen.size()), 2 * n - 6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RearrangementCount,
                         ::testing::Values(4, 5, 6, 8, 10, 15, 25));

TEST(Rearrangement, LargerCrossingsSearchMoreTopologies) {
  Rng rng(44);
  Tree tree = random_tree(12, rng);
  std::size_t previous = 0;
  for (int k = 1; k <= 4; ++k) {
    std::set<std::uint64_t> seen;
    const std::uint64_t original = topology_hash(tree);
    for (const auto& move : rearrangement_moves(tree, k)) {
      Tree candidate = tree;
      const auto handle =
          candidate.prune_subtree(move.junction, move.subtree_neighbor);
      candidate.regraft(handle, move.target_u, move.target_v);
      const std::uint64_t hash = topology_hash(candidate);
      if (hash != original) seen.insert(hash);
    }
    EXPECT_GT(seen.size(), previous) << "k=" << k;
    previous = seen.size();
  }
}

TEST(Rearrangement, TargetsExcludeOriginalPosition) {
  Rng rng(55);
  Tree tree = random_tree(10, rng);
  for (const auto& move : rearrangement_moves(tree, 2)) {
    EXPECT_FALSE((move.target_u == move.junction || move.target_v == move.junction));
  }
}

// --- consensus ---

TEST(Consensus, IdenticalTreesGiveFullyResolvedConsensus) {
  Rng rng(66);
  const Tree tree = random_tree(10, rng);
  const auto names = names_for(10);
  const std::vector<Tree> trees{tree, tree, tree};
  const GeneralTree consensus = consensus_tree(trees, names);
  EXPECT_EQ(consensus.leaf_count(), 10u);
  // Fully resolved rooted display of an unrooted n-leaf binary tree:
  // n-3 internal (split) nodes below the root.
  int internal = 0;
  for (int id : consensus.preorder()) {
    if (!consensus.is_leaf(id) && id != consensus.root()) ++internal;
  }
  EXPECT_EQ(internal, 7);
  for (int id : consensus.preorder()) {
    if (!consensus.is_leaf(id) && id != consensus.root()) {
      EXPECT_DOUBLE_EQ(consensus.node(id).support, 1.0);
    }
  }
}

TEST(Consensus, MajorityRuleKeepsMajorSplitsOnly) {
  const auto names = names_for(6);
  // Two topologies agree on split {t4,t5}; a third disagrees everywhere else.
  const Tree a = tree_from_newick(
      "((t0:1,t1:1):1,(t2:1,t3:1):1,(t4:1,t5:1):1);", names);
  const Tree b = tree_from_newick(
      "((t0:1,t2:1):1,(t1:1,t3:1):1,(t4:1,t5:1):1);", names);
  const Tree c = tree_from_newick(
      "((t0:1,t3:1):1,(t1:1,t2:1):1,(t4:1,t5:1):1);", names);
  const auto freqs = split_frequencies({a, b, c});
  ASSERT_FALSE(freqs.empty());
  EXPECT_DOUBLE_EQ(freqs.front().frequency, 1.0);
  const GeneralTree consensus = consensus_tree({a, b, c}, names);
  // Only the unanimous {t4,t5} split survives majority rule.
  int internal = 0;
  for (int id : consensus.preorder()) {
    if (!consensus.is_leaf(id) && id != consensus.root()) ++internal;
  }
  EXPECT_EQ(internal, 1);
}

TEST(Consensus, StrictConsensusIsSubsetOfMajority) {
  Rng rng(88);
  std::vector<Tree> trees;
  for (int i = 0; i < 5; ++i) trees.push_back(random_tree(8, rng));
  trees.push_back(trees.front());
  const auto names = names_for(8);
  const GeneralTree strict = strict_consensus(trees, names);
  const GeneralTree majority = consensus_tree(trees, names);
  auto count_internal = [](const GeneralTree& t) {
    int n = 0;
    for (int id : t.preorder()) {
      if (!t.is_leaf(id) && id != t.root()) ++n;
    }
    return n;
  };
  EXPECT_LE(count_internal(strict), count_internal(majority));
}

TEST(Consensus, MismatchedTaxaThrow) {
  Rng rng(99);
  Tree a = random_tree(6, rng);
  Tree b(6);
  b.make_triplet(0, 1, 2);
  b.insert_tip(3, 0, b.neighbor(0, 0));
  b.insert_tip(4, 1, b.neighbor(1, 0));
  EXPECT_THROW(split_frequencies({a, b}), std::invalid_argument);
}

// --- GeneralTree / canonicalize ---

TEST(GeneralTree, CanonicalizeNormalizesBranchOrder) {
  // Same topology drawn with reversed branch orderings — the paper's viewer
  // pivots subtrees to show they are identical.
  GeneralTree a = parse_newick("((b:1,a:1):1,(d:1,c:1):1);");
  GeneralTree b = parse_newick("((c:1,d:1):1,(a:1,b:1):1);");
  a.canonicalize();
  b.canonicalize();
  EXPECT_EQ(to_newick(a), to_newick(b));
}

TEST(GeneralTree, FromTreeRoundTrip) {
  Rng rng(111);
  const Tree tree = random_tree(9, rng);
  const auto names = names_for(9);
  const GeneralTree general = GeneralTree::from_tree(tree, names);
  EXPECT_EQ(general.leaf_count(), 9u);
  const Tree back = tree_from_newick(to_newick(general), names);
  EXPECT_EQ(robinson_foulds(tree, back), 0);
}


TEST(Newick, SupportValuesRoundTrip) {
  GeneralTree tree = parse_newick("((a:1,b:1)0.93:0.5,c:1,d:1);");
  int supported = 0;
  for (int id : tree.preorder()) {
    if (!std::isnan(tree.node(id).support)) {
      ++supported;
      EXPECT_DOUBLE_EQ(tree.node(id).support, 0.93);
    }
  }
  EXPECT_EQ(supported, 1);
  const std::string out = to_newick(tree);
  EXPECT_NE(out.find("0.93"), std::string::npos);
  // And it parses back with the support intact.
  const GeneralTree back = parse_newick(out);
  int reparsed = 0;
  for (int id : back.preorder()) {
    if (!std::isnan(back.node(id).support)) ++reparsed;
  }
  EXPECT_EQ(reparsed, 1);
}

TEST(GeneralTree, FromTreeWithSubsetOfTaxa) {
  // Stepwise-addition intermediate trees cover a subset of the taxon ids;
  // the rooted view must still work.
  const auto names = names_for(10);
  const Tree tree = tree_from_newick("(t1:1,t5:1,(t7:1,t9:2):1);", names);
  const GeneralTree general = GeneralTree::from_tree(tree, names);
  EXPECT_EQ(general.leaf_count(), 4u);
  const Tree back = tree_from_newick(to_newick(general), names);
  EXPECT_EQ(robinson_foulds(tree, back), 0);
}

TEST(Splits, SubsetAndCompatibilityExplicitCases) {
  const auto names = names_for(6);
  const Tree tree = tree_from_newick(
      "((t1:1,(t2:1,t3:1):1):1,t0:1,(t4:1,t5:1):1);", names);
  const auto splits = tree_splits(tree);
  ASSERT_EQ(splits.size(), 3u);
  // Find the nested pair: {t2,t3} subset of {t1,t2,t3}.
  const Split* small = nullptr;
  const Split* large = nullptr;
  for (const auto& split : splits) {
    if (split.count() == 2 && split.test(2) && split.test(3)) small = &split;
    if (split.count() == 3) large = &split;
  }
  ASSERT_NE(small, nullptr);
  ASSERT_NE(large, nullptr);
  EXPECT_TRUE(small->subset_of(*large));
  EXPECT_FALSE(large->subset_of(*small));
  EXPECT_TRUE(small->compatible_with(*large));
}

TEST(Tree, EdgesAreSortedAndSymmetric) {
  Rng rng(99);
  const Tree tree = random_tree(15, rng);
  for (const auto& [u, v] : tree.edges()) {
    EXPECT_LT(u, v);
    EXPECT_TRUE(tree.adjacent(u, v));
    EXPECT_TRUE(tree.adjacent(v, u));
    EXPECT_DOUBLE_EQ(tree.length(u, v), tree.length(v, u));
  }
}

}  // namespace
}  // namespace fdml
