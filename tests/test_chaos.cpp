// Chaos harness tests: seeded fault schedules are reproducible, every
// injected fault class is survived by the hardened runtime, and a chaos
// run (or a killed-and-resumed run) produces the same tree as a clean one.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <sstream>
#include <thread>

#include "comm/chaos.hpp"
#include "comm/fault.hpp"
#include "comm/integrity.hpp"
#include "comm/transport.hpp"
#include "model/simulate.hpp"
#include "parallel/cluster.hpp"
#include "parallel/foreman.hpp"
#include "parallel/master.hpp"
#include "parallel/protocol.hpp"
#include "search/search.hpp"
#include "tree/random.hpp"
#include "util/rng.hpp"

namespace fdml {
namespace {

using std::chrono::milliseconds;

// --- FaultPlan ---

TEST(FaultPlan, SerializeParseRoundTrip) {
  FaultPlan plan;
  plan.seed = 777;
  plan.drop = 0.125;
  plan.duplicate = 0.25;
  plan.corrupt = 0.0625;
  plan.reorder = 0.5;
  plan.delay = 0.375;
  plan.delay_min_ms = 2;
  plan.delay_max_ms = 33;
  plan.reorder_hold_ms = 7;
  plan.task_corrupt = 0.03125;
  plan.crash_after_sends = 42;

  const FaultPlan back = FaultPlan::parse(plan.serialize());
  EXPECT_EQ(back.seed, plan.seed);
  EXPECT_DOUBLE_EQ(back.drop, plan.drop);
  EXPECT_DOUBLE_EQ(back.duplicate, plan.duplicate);
  EXPECT_DOUBLE_EQ(back.corrupt, plan.corrupt);
  EXPECT_DOUBLE_EQ(back.reorder, plan.reorder);
  EXPECT_DOUBLE_EQ(back.delay, plan.delay);
  EXPECT_EQ(back.delay_min_ms, plan.delay_min_ms);
  EXPECT_EQ(back.delay_max_ms, plan.delay_max_ms);
  EXPECT_EQ(back.reorder_hold_ms, plan.reorder_hold_ms);
  EXPECT_DOUBLE_EQ(back.task_corrupt, plan.task_corrupt);
  EXPECT_EQ(back.crash_after_sends, plan.crash_after_sends);
}

TEST(FaultPlan, ParseRejectsGarbage) {
  EXPECT_THROW(FaultPlan::parse("not-a-plan v1 seed=1"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("chaos-plan v9 seed=1"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("chaos-plan v1 bogus_key=1"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("chaos-plan v1 drop=banana"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("chaos-plan v1 noequals"), std::runtime_error);
}

// --- schedule reproducibility ---

std::vector<FaultRecord> run_schedule(const FaultPlan& plan, int messages) {
  ThreadFabric fabric(4);
  ChaosTransport chaos(fabric.endpoint(3), plan);
  for (int i = 0; i < messages; ++i) {
    std::vector<std::uint8_t> payload(16, static_cast<std::uint8_t>(i));
    seal_payload(payload);
    chaos.send(kForemanRank, MessageTag::kResult, std::move(payload));
  }
  return chaos.fault_log();
}

TEST(Chaos, SameSeedReproducesTheExactSchedule) {
  FaultPlan plan;
  plan.seed = 20010101;
  plan.drop = 0.2;
  plan.duplicate = 0.2;
  plan.corrupt = 0.2;
  plan.reorder = 0.2;
  plan.delay = 0.3;

  const auto first = run_schedule(plan, 64);
  const auto second = run_schedule(plan, 64);
  ASSERT_EQ(first.size(), 64u);
  EXPECT_EQ(first, second);

  // The schedule actually contains faults (not a vacuous comparison).
  int faulted = 0;
  for (const auto& record : first) {
    if (record.dropped || record.duplicated || record.corrupted ||
        record.reordered || record.delay_ms > 0) {
      ++faulted;
    }
  }
  EXPECT_GT(faulted, 10);

  // A different seed yields a different schedule.
  FaultPlan other = plan;
  other.seed = 20010102;
  EXPECT_NE(run_schedule(other, 64), first);

  // The plan survives its own serialization, so a logged plan line is
  // enough to replay a failing schedule.
  EXPECT_EQ(run_schedule(FaultPlan::parse(plan.serialize()), 64), first);
}

TEST(Chaos, DelayedSendDoesNotBlockTheSender) {
  ThreadFabric fabric(4);
  auto receiver = fabric.endpoint(kForemanRank);
  FaultPlan plan;
  plan.seed = 3;
  plan.delay = 1.0;
  plan.delay_min_ms = 80;
  plan.delay_max_ms = 80;
  ChaosTransport chaos(fabric.endpoint(3), plan);

  std::vector<std::uint8_t> payload(8, 0xab);
  seal_payload(payload);
  const auto before = std::chrono::steady_clock::now();
  chaos.send(kForemanRank, MessageTag::kResult, std::move(payload));
  const auto send_cost = std::chrono::steady_clock::now() - before;
  EXPECT_LT(send_cost, milliseconds(40)) << "send() slept in the caller";

  // Not yet delivered...
  EXPECT_FALSE(receiver->recv_for(milliseconds(5)).has_value());
  // ...but it arrives once the injected latency elapses.
  const auto message = receiver->recv_for(milliseconds(2000));
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->tag, MessageTag::kResult);
}

// Satellite regression: FaultyTransport's injected delay used to sleep in
// the caller's thread, freezing the sender instead of the network.
TEST(Chaos, FaultyTransportDelayIsDeferredToo) {
  ThreadFabric fabric(4);
  auto receiver = fabric.endpoint(kForemanRank);
  FaultyTransport faulty(
      fabric.endpoint(3), nullptr,
      [](const Message&) { return milliseconds(80); });

  const auto before = std::chrono::steady_clock::now();
  faulty.send(kForemanRank, MessageTag::kResult, {1, 2, 3});
  EXPECT_LT(std::chrono::steady_clock::now() - before, milliseconds(40));
  const auto message = receiver->recv_for(milliseconds(2000));
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->payload, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Chaos, CrashAfterSendsSilencesTheHost) {
  ThreadFabric fabric(4);
  auto receiver = fabric.endpoint(kForemanRank);
  FaultPlan plan;
  plan.crash_after_sends = 3;
  auto totals = std::make_shared<ChaosTotals>();
  ChaosTransport chaos(fabric.endpoint(3), plan, totals);

  chaos.send(kForemanRank, MessageTag::kHello, {});
  std::vector<std::uint8_t> payload{9};
  seal_payload(payload);
  chaos.send(kForemanRank, MessageTag::kResult, payload);
  EXPECT_FALSE(chaos.crashed());
  chaos.send(kForemanRank, MessageTag::kResult, payload);  // third send: dies
  EXPECT_TRUE(chaos.crashed());
  chaos.send(kForemanRank, MessageTag::kResult, payload);  // swallowed
  EXPECT_TRUE(chaos.closed());
  EXPECT_FALSE(chaos.recv_for(milliseconds(5)).has_value());

  // Exactly the two pre-crash messages made it out.
  EXPECT_TRUE(receiver->recv_for(milliseconds(200)).has_value());
  EXPECT_TRUE(receiver->recv_for(milliseconds(200)).has_value());
  EXPECT_FALSE(receiver->recv_for(milliseconds(50)).has_value());
  EXPECT_EQ(totals->crashes.load(), 1u);
  EXPECT_GE(totals->swallowed_after_crash.load(), 2u);
}

// --- scripted foreman under faults ---

void send_hello(Transport& worker) {
  worker.send(kForemanRank, MessageTag::kHello, {});
}

void send_task_round(Transport& master, std::uint64_t round_id,
                     std::initializer_list<std::uint64_t> task_ids) {
  RoundMessage round;
  round.round_id = round_id;
  for (std::uint64_t id : task_ids) {
    TreeTask task;
    task.task_id = id;
    task.round_id = round_id;
    task.newick = "(a:1,b:1,c:1);";
    round.tasks.push_back(task);
  }
  auto payload = round.pack();
  seal_payload(payload);
  master.send(kForemanRank, MessageTag::kRound, std::move(payload));
}

TreeTask recv_task_sealed(Transport& worker, milliseconds timeout) {
  auto message = worker.recv_for(timeout);
  if (!message.has_value()) {
    ADD_FAILURE() << "no task arrived within " << timeout.count() << " ms";
    return TreeTask{};
  }
  EXPECT_EQ(message->tag, MessageTag::kTask);
  EXPECT_TRUE(open_payload(message->payload));
  Unpacker unpacker(message->payload);
  return TreeTask::unpack(unpacker);
}

void send_result_sealed(Transport& worker, std::uint64_t task_id,
                        std::uint64_t round_id, bool corrupt_in_transit = false) {
  TaskResult result;
  result.task_id = task_id;
  result.round_id = round_id;
  result.log_likelihood = -50.0 - static_cast<double>(task_id);
  result.newick = "(a:1,b:1,c:1);";
  Packer packer;
  result.pack(packer);
  auto payload = packer.take();
  seal_payload(payload);
  if (corrupt_in_transit) payload[3] ^= 0x40;  // one flipped bit
  worker.send(kForemanRank, MessageTag::kResult, std::move(payload));
}

/// Skips kProgress heartbeats; returns the round's completion, or nullopt.
std::optional<RoundDoneMessage> await_round_done(Transport& master,
                                                 milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto remaining = std::chrono::duration_cast<milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return std::nullopt;
    auto message = master.recv_for(remaining);
    if (!message.has_value()) return std::nullopt;
    if (message->tag != MessageTag::kRoundDone) continue;
    EXPECT_TRUE(open_payload(message->payload));
    return RoundDoneMessage::unpack(message->payload);
  }
}

// The corrupt-result regression: a payload with a flipped bit used to throw
// out of the foreman's decode path and kill the thread (wedging the whole
// run). Now it is counted, the sender is quarantined into probation, and
// the task still completes through the probe.
TEST(ForemanChaos, CorruptResultIsCountedAndSenderQuarantined) {
  ThreadFabric fabric(4);
  ForemanOptions options;
  options.worker_timeout = milliseconds(3000);
  options.probation_backoff = milliseconds(20);
  options.notify_monitor = false;
  auto foreman_endpoint = fabric.endpoint(kForemanRank);
  ForemanStats stats;
  std::thread foreman([&] { stats = foreman_main(*foreman_endpoint, options); });

  auto master = fabric.endpoint(kMasterRank);
  auto worker = fabric.endpoint(kFirstWorkerRank);
  send_hello(*worker);
  send_task_round(*master, 1, {1});

  const TreeTask task = recv_task_sealed(*worker, milliseconds(2000));
  EXPECT_EQ(task.task_id, 1u);
  // The result arrives corrupted. The old foreman died here.
  send_result_sealed(*worker, 1, 1, /*corrupt_in_transit=*/true);

  // The worker is quarantined, the task requeued; after the probation
  // backoff the foreman sends it one probe task, and a clean reply
  // completes the round.
  const TreeTask probe = recv_task_sealed(*worker, milliseconds(2000));
  EXPECT_EQ(probe.task_id, 1u);
  send_result_sealed(*worker, 1, 1);

  const auto done = await_round_done(*master, milliseconds(2000));
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->best.task_id, 1u);

  master->send(kForemanRank, MessageTag::kShutdown, {});
  foreman.join();

  EXPECT_EQ(stats.corrupt_messages, 1u);
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_EQ(stats.probations, 1u);
  EXPECT_EQ(stats.probation_probes, 1u);
  EXPECT_EQ(stats.probation_passes, 1u);
  EXPECT_EQ(stats.tasks_completed, 1u);
  EXPECT_GE(stats.requeues, 1u);
}

// Full worker lifecycle: healthy -> delinquent (timeout) -> probation (late
// reply) -> probe -> healthy again, with each transition visible in stats.
TEST(ForemanChaos, DelinquentProbationReinstatementLifecycle) {
  ThreadFabric fabric(4);
  ForemanOptions options;
  options.worker_timeout = milliseconds(150);
  options.probation_backoff = milliseconds(20);
  options.notify_monitor = false;
  auto foreman_endpoint = fabric.endpoint(kForemanRank);
  ForemanStats stats;
  std::thread foreman([&] { stats = foreman_main(*foreman_endpoint, options); });

  auto master = fabric.endpoint(kMasterRank);
  auto worker = fabric.endpoint(kFirstWorkerRank);
  send_hello(*worker);
  send_task_round(*master, 1, {1, 2});

  EXPECT_EQ(recv_task_sealed(*worker, milliseconds(2000)).task_id, 1u);
  // Sit on the task until the deadline passes: delinquent. The sleep must
  // exceed the 150 ms deadline but reply well before the dead-declare at
  // roughly 2x the deadline, or a loaded scheduler can lose the race.
  std::this_thread::sleep_for(milliseconds(220));
  // The late reply moves the worker to probation (the paper's
  // reinstatement, now conditional) and completes task 1.
  send_result_sealed(*worker, 1, 1);
  // Task 2 arrives as the probation probe after the backoff.
  EXPECT_EQ(recv_task_sealed(*worker, milliseconds(2000)).task_id, 2u);
  send_result_sealed(*worker, 2, 1);

  const auto done = await_round_done(*master, milliseconds(2000));
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->stats.size(), 2u);

  // Healthy again: a fresh round dispatches to it immediately, no probe.
  send_task_round(*master, 2, {10});
  EXPECT_EQ(recv_task_sealed(*worker, milliseconds(2000)).task_id, 10u);
  send_result_sealed(*worker, 10, 2);
  ASSERT_TRUE(await_round_done(*master, milliseconds(2000)).has_value());

  master->send(kForemanRank, MessageTag::kShutdown, {});
  foreman.join();

  EXPECT_EQ(stats.delinquencies, 1u);
  EXPECT_EQ(stats.reinstatements, 1u);
  EXPECT_EQ(stats.probations, 1u);
  EXPECT_EQ(stats.probation_probes, 1u);
  EXPECT_EQ(stats.probation_passes, 1u);
  EXPECT_EQ(stats.probation_failures, 0u);
  EXPECT_EQ(stats.tasks_completed, 3u);
  EXPECT_EQ(stats.rounds, 2u);
}

// A worker that NACKs a malformed task gets the task requeued without
// waiting out the deadline and without losing its healthy status.
TEST(ForemanChaos, NackRequeuesTaskImmediately) {
  ThreadFabric fabric(4);
  ForemanOptions options;
  options.worker_timeout = milliseconds(5000);  // a timeout would dominate the test
  options.notify_monitor = false;
  auto foreman_endpoint = fabric.endpoint(kForemanRank);
  ForemanStats stats;
  std::thread foreman([&] { stats = foreman_main(*foreman_endpoint, options); });

  auto master = fabric.endpoint(kMasterRank);
  auto worker = fabric.endpoint(kFirstWorkerRank);
  send_hello(*worker);
  send_task_round(*master, 1, {1});

  EXPECT_EQ(recv_task_sealed(*worker, milliseconds(2000)).task_id, 1u);
  worker->send(kForemanRank, MessageTag::kNack, {});
  // Resent well before the 5 s deadline.
  EXPECT_EQ(recv_task_sealed(*worker, milliseconds(2000)).task_id, 1u);
  send_result_sealed(*worker, 1, 1);
  ASSERT_TRUE(await_round_done(*master, milliseconds(2000)).has_value());

  master->send(kForemanRank, MessageTag::kShutdown, {});
  foreman.join();

  EXPECT_EQ(stats.task_nacks, 1u);
  EXPECT_GE(stats.requeues, 1u);
  EXPECT_EQ(stats.delinquencies, 0u);
  EXPECT_EQ(stats.tasks_completed, 1u);
}

// With every known worker delinquent and work outstanding, the foreman
// reports kRoundFailed instead of letting the master wait forever.
TEST(ForemanChaos, AllWorkersDeadFailsTheRound) {
  ThreadFabric fabric(4);
  ForemanOptions options;
  options.worker_timeout = milliseconds(100);
  options.notify_monitor = false;
  auto foreman_endpoint = fabric.endpoint(kForemanRank);
  ForemanStats stats;
  std::thread foreman([&] { stats = foreman_main(*foreman_endpoint, options); });

  auto master = fabric.endpoint(kMasterRank);
  auto worker = fabric.endpoint(kFirstWorkerRank);
  send_hello(*worker);
  send_task_round(*master, 1, {1, 2});
  // Receive the task and never answer: the only worker dies.
  recv_task_sealed(*worker, milliseconds(2000));

  std::optional<Message> failure;
  const auto deadline = std::chrono::steady_clock::now() + milliseconds(3000);
  while (std::chrono::steady_clock::now() < deadline) {
    auto message = master->recv_for(milliseconds(200));
    if (message.has_value() && message->tag == MessageTag::kRoundFailed) {
      failure = std::move(message);
      break;
    }
  }
  ASSERT_TRUE(failure.has_value());
  ASSERT_TRUE(open_payload(failure->payload));
  const RoundFailedMessage failed = RoundFailedMessage::unpack(failure->payload);
  EXPECT_EQ(failed.round_id, 1u);

  master->send(kForemanRank, MessageTag::kShutdown, {});
  foreman.join();
  EXPECT_EQ(stats.rounds_failed, 1u);
  EXPECT_GE(stats.delinquencies, 1u);
}

// --- master watchdog ---

TEST(MasterChaos, WatchdogRaisesStructuredErrorWithoutFallback) {
  ThreadFabric fabric(4);  // nobody is listening on the foreman rank
  auto endpoint = fabric.endpoint(kMasterRank);
  MasterOptions options;
  options.watchdog_timeout = milliseconds(120);
  options.serial_fallback = false;
  ParallelMaster master(*endpoint, 1, options);

  TreeTask task;
  task.task_id = 1;
  task.newick = "(a:1,b:1,c:1);";
  try {
    master.run_round({task});
    FAIL() << "expected RoundFailedError";
  } catch (const RoundFailedError& error) {
    EXPECT_EQ(error.round_id(), 1u);
  }
  EXPECT_EQ(master.stats().watchdog_trips, 1u);
}

TEST(MasterChaos, WatchdogDegradesToFallbackWhenAvailable) {
  ThreadFabric fabric(4);
  auto endpoint = fabric.endpoint(kMasterRank);
  MasterOptions options;
  options.watchdog_timeout = milliseconds(120);
  ParallelMaster master(*endpoint, 1, options);
  int fallback_rounds = 0;
  master.set_fallback([&](const std::vector<TreeTask>& tasks) {
    ++fallback_rounds;
    RoundOutcome outcome;
    outcome.best.task_id = tasks.front().task_id;
    outcome.best.log_likelihood = -1.0;
    outcome.stats.resize(tasks.size());
    return outcome;
  });

  TreeTask task;
  task.task_id = 7;
  task.newick = "(a:1,b:1,c:1);";
  const RoundOutcome outcome = master.run_round({task});
  EXPECT_EQ(outcome.best.task_id, 7u);
  EXPECT_EQ(fallback_rounds, 1);
  EXPECT_EQ(master.stats().watchdog_trips, 1u);
  EXPECT_EQ(master.stats().serial_fallbacks, 1u);

  // The fabric is known-wedged: the next round skips the watchdog wait.
  const auto before = std::chrono::steady_clock::now();
  master.run_round({task});
  EXPECT_LT(std::chrono::steady_clock::now() - before, milliseconds(100));
  EXPECT_EQ(fallback_rounds, 2);
}

// --- full cluster under chaos ---

struct ChaosFixture {
  ChaosFixture(int taxa = 8, std::size_t sites = 120)
      : truth(3), alignment(make(taxa, sites, truth)), data(alignment) {}

  static Alignment make(int taxa, std::size_t sites, Tree& truth_out) {
    Rng rng(77);
    truth_out = random_yule_tree(taxa, rng);
    SimulateOptions options;
    options.num_sites = sites;
    return simulate_alignment(truth_out, default_taxon_names(taxa),
                              SubstModel::jc69(), RateModel::uniform(), options,
                              rng);
  }

  Tree truth;
  Alignment alignment;
  PatternAlignment data;
};

// The headline acceptance test: a seeded multi-fault chaos run returns the
// identical best tree and log-likelihood as the fault-free run with the
// same search seed.
TEST(ClusterChaos, SeededMultiFaultRunMatchesFaultFreeRun) {
  ChaosFixture fx;
  SearchOptions options;
  options.seed = 11;

  SerialTaskRunner serial(fx.data, SubstModel::jc69(), RateModel::uniform());
  const SearchResult clean = StepwiseSearch(fx.data, options).run(serial);

  FaultPlan plan;
  plan.seed = 424242;
  plan.drop = 0.05;
  plan.duplicate = 0.1;
  plan.corrupt = 0.05;
  plan.reorder = 0.1;
  plan.delay = 0.2;
  plan.delay_min_ms = 1;
  plan.delay_max_ms = 8;
  plan.task_corrupt = 0.05;
  // Every worker dies partway through the run (well before the search's
  // per-worker send count), so the acceptance schedule really combines
  // drop + delay + duplicate + corrupt + crash in one run: the early
  // rounds absorb recoverable faults, the tail degrades to in-process
  // evaluation — and the answer must not move either way.
  plan.crash_after_sends = 20;

  ClusterOptions cluster_options;
  cluster_options.num_workers = 3;
  cluster_options.foreman.worker_timeout = milliseconds(400);
  cluster_options.foreman.probation_backoff = milliseconds(20);
  cluster_options.chaos = plan;
  InProcessCluster cluster(fx.data, SubstModel::jc69(), RateModel::uniform(),
                           cluster_options);
  const SearchResult chaotic =
      StepwiseSearch(fx.data, options).run(cluster.runner());
  cluster.shutdown();

  EXPECT_EQ(chaotic.best_newick, clean.best_newick);
  EXPECT_NEAR(chaotic.best_log_likelihood, clean.best_log_likelihood, 1e-9);
  EXPECT_EQ(chaotic.trees_evaluated, clean.trees_evaluated);

  // The run actually went through faults, and the runtime absorbed them.
  const auto totals = cluster.chaos_totals();
  ASSERT_NE(totals, nullptr);
  EXPECT_GT(totals->drops.load() + totals->corruptions.load() +
                totals->duplicates.load() + totals->delays.load() +
                totals->reorders.load() + totals->task_corruptions.load(),
            0u);
  // The parallel path did real work before the crashes (an all-serial run
  // would also match, since the fallback is the same evaluator — but then
  // this test would prove nothing), and the crash tail really ran serially.
  EXPECT_GT(cluster.foreman_stats().tasks_completed, 0u);
  EXPECT_EQ(totals->crashes.load(), 3u);
  EXPECT_GE(cluster.master_stats().serial_fallbacks, 1u);
}

// Crash every worker after its first result send: the foreman declares the
// round unfinishable and the master degrades to in-process evaluation —
// the search still finishes, with the serial answer.
TEST(ClusterChaos, AllWorkerCrashDegradesToSerialAndFinishes) {
  ChaosFixture fx;
  SearchOptions options;
  options.seed = 7;

  SerialTaskRunner serial(fx.data, SubstModel::jc69(), RateModel::uniform());
  const SearchResult expected = StepwiseSearch(fx.data, options).run(serial);

  FaultPlan plan;
  plan.seed = 5;
  plan.crash_after_sends = 2;  // hello goes out, the first result kills it

  ClusterOptions cluster_options;
  cluster_options.num_workers = 2;
  cluster_options.foreman.worker_timeout = milliseconds(120);
  cluster_options.chaos = plan;
  InProcessCluster cluster(fx.data, SubstModel::jc69(), RateModel::uniform(),
                           cluster_options);
  const SearchResult degraded =
      StepwiseSearch(fx.data, options).run(cluster.runner());
  cluster.shutdown();

  EXPECT_EQ(degraded.best_newick, expected.best_newick);
  EXPECT_NEAR(degraded.best_log_likelihood, expected.best_log_likelihood, 1e-9);
  EXPECT_EQ(cluster.chaos_totals()->crashes.load(), 2u);
  EXPECT_GE(cluster.master_stats().rounds_failed, 1u);
  EXPECT_GE(cluster.master_stats().serial_fallbacks, 1u);
  EXPECT_GE(cluster.foreman_stats().rounds_failed, 1u);
}

// --- kill + resume under chaos ---

/// Throws after a fixed number of rounds — the "power cut" for the
/// checkpoint/restart test.
class KillSwitchRunner final : public TaskRunner {
 public:
  KillSwitchRunner(TaskRunner& inner, int rounds_before_kill)
      : inner_(inner), remaining_(rounds_before_kill) {}

  RoundOutcome run_round(const std::vector<TreeTask>& tasks) override {
    if (remaining_-- <= 0) throw std::runtime_error("killed");
    return inner_.run_round(tasks);
  }
  int worker_count() const override { return inner_.worker_count(); }

 private:
  TaskRunner& inner_;
  int remaining_;
};

// A parallel run killed mid-search resumes from its round-granular
// checkpoint — possibly mid-rearrangement — and, under a fresh chaos
// schedule, still reproduces the uninterrupted best tree bit-for-bit.
TEST(ClusterChaos, KilledRunResumesFromCheckpointIdentically) {
  ChaosFixture fx;
  const std::string path =
      (std::filesystem::temp_directory_path() / "fdml_chaos_ckpt").string();
  std::filesystem::remove(path);

  SearchOptions options;
  options.seed = 19;
  options.checkpoint_path = path;

  SerialTaskRunner serial(fx.data, SubstModel::jc69(), RateModel::uniform());
  SearchOptions clean_options = options;
  clean_options.checkpoint_path.clear();
  const SearchResult full = StepwiseSearch(fx.data, clean_options).run(serial);

  FaultPlan plan;
  plan.seed = 99;
  plan.drop = 0.05;
  plan.delay = 0.2;
  plan.delay_max_ms = 5;
  plan.corrupt = 0.05;

  ClusterOptions cluster_options;
  cluster_options.num_workers = 2;
  cluster_options.foreman.worker_timeout = milliseconds(400);
  cluster_options.foreman.probation_backoff = milliseconds(20);
  cluster_options.chaos = plan;
  InProcessCluster cluster(fx.data, SubstModel::jc69(), RateModel::uniform(),
                           cluster_options);

  // Run until the kill switch trips mid-search.
  KillSwitchRunner killed(cluster.runner(), 9);
  EXPECT_THROW(StepwiseSearch(fx.data, options).run(killed),
               std::runtime_error);
  ASSERT_TRUE(std::filesystem::exists(path))
      << "the killed run left no checkpoint";

  // Resume on the same (still chaotic) cluster from the saved state.
  const SearchCheckpoint checkpoint = SearchCheckpoint::load_file(path);
  EXPECT_LT(checkpoint.next_order_index, static_cast<int>(fx.data.num_taxa()) + 1);
  SearchOptions resume_options = options;
  resume_options.checkpoint_path.clear();
  const SearchResult resumed =
      StepwiseSearch(fx.data, resume_options).resume(cluster.runner(), checkpoint);
  cluster.shutdown();

  EXPECT_EQ(resumed.best_newick, full.best_newick);
  EXPECT_NEAR(resumed.best_log_likelihood, full.best_log_likelihood, 1e-9);
  std::filesystem::remove(path);
}

// A v2 checkpoint written mid-rearrangement round-trips every field.
TEST(ClusterChaos, RearrangePhaseCheckpointRoundTrips) {
  SearchCheckpoint checkpoint;
  checkpoint.seed = 19;
  checkpoint.addition_order = {2, 0, 1, 3};
  checkpoint.next_order_index = 4;
  checkpoint.tree_newick = "(a:0.1,b:0.2,(c:0.3,d:0.4):0.5);";
  checkpoint.log_likelihood = -77.5;
  checkpoint.phase = SearchPhase::kRearrange;
  checkpoint.rearrange_rounds_done = 3;
  checkpoint.rearrange_cross = 2;

  std::stringstream buffer;
  checkpoint.save(buffer);
  const SearchCheckpoint back = SearchCheckpoint::load(buffer);
  EXPECT_EQ(back.phase, SearchPhase::kRearrange);
  EXPECT_EQ(back.rearrange_rounds_done, 3);
  EXPECT_EQ(back.rearrange_cross, 2);
  EXPECT_EQ(back.addition_order, checkpoint.addition_order);
}

}  // namespace
}  // namespace fdml
