// Tests for layouts and renderers (the Open Inventor viewer substitute).
#include <gtest/gtest.h>

#include "tree/newick.hpp"
#include "tree/random.hpp"
#include "viz/ascii.hpp"
#include "viz/layout.hpp"
#include "viz/svg.hpp"

namespace fdml {
namespace {

GeneralTree sample_tree() {
  return parse_newick("((a:1,b:2):1,(c:1,(d:1,e:1):0.5):2,f:3);");
}

TEST(Layout, RectangularDepthsAndRanks) {
  const GeneralTree tree = sample_tree();
  const TreeLayout layout = rectangular_layout(tree);
  ASSERT_EQ(layout.positions.size(), tree.size());
  // Root at the origin.
  EXPECT_DOUBLE_EQ(layout.positions[static_cast<std::size_t>(tree.root())].x, 0.0);
  // Leaf depths equal cumulative path lengths.
  for (int id : tree.leaves()) {
    double depth = 0.0;
    for (int walk = id; walk != tree.root(); walk = tree.node(walk).parent) {
      depth += tree.node(walk).length;
    }
    EXPECT_DOUBLE_EQ(layout.positions[static_cast<std::size_t>(id)].x, depth);
  }
  // Leaves occupy distinct integer ranks 0..leaves-1.
  std::vector<double> ranks;
  for (int id : tree.leaves()) {
    ranks.push_back(layout.positions[static_cast<std::size_t>(id)].y);
  }
  std::sort(ranks.begin(), ranks.end());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    EXPECT_DOUBLE_EQ(ranks[i], static_cast<double>(i));
  }
  // Internal nodes sit between their extreme children.
  for (int id : tree.preorder()) {
    const auto& node = tree.node(id);
    if (node.children.empty()) continue;
    double lo = 1e300;
    double hi = -1e300;
    for (int child : node.children) {
      lo = std::min(lo, layout.positions[static_cast<std::size_t>(child)].y);
      hi = std::max(hi, layout.positions[static_cast<std::size_t>(child)].y);
    }
    const double y = layout.positions[static_cast<std::size_t>(id)].y;
    EXPECT_GE(y, lo);
    EXPECT_LE(y, hi);
  }
}

TEST(Layout, CladogramIgnoresLengths) {
  const GeneralTree tree = sample_tree();
  const TreeLayout layout = rectangular_layout(tree, false);
  for (int id : tree.preorder()) {
    if (id == tree.root()) continue;
    const double dx = layout.positions[static_cast<std::size_t>(id)].x -
                      layout.positions[static_cast<std::size_t>(tree.node(id).parent)].x;
    EXPECT_DOUBLE_EQ(dx, 1.0);
  }
}

TEST(Layout, EqualAngleSeparatesLeaves) {
  Rng rng(3);
  const Tree tree = random_tree(12, rng);
  std::vector<std::string> names;
  for (int i = 0; i < 12; ++i) names.push_back("t" + std::to_string(i));
  const GeneralTree general = GeneralTree::from_tree(tree, names);
  const TreeLayout layout = equal_angle_layout(general);
  // All leaf positions distinct and within the bounding box.
  const auto leaves = general.leaves();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const auto& p = layout.positions[static_cast<std::size_t>(leaves[i])];
    EXPECT_GE(p.x, -1e-9);
    EXPECT_LE(p.x, layout.width + 1e-9);
    EXPECT_GE(p.y, -1e-9);
    EXPECT_LE(p.y, layout.height + 1e-9);
    for (std::size_t j = i + 1; j < leaves.size(); ++j) {
      const auto& q = layout.positions[static_cast<std::size_t>(leaves[j])];
      const double dist = std::hypot(p.x - q.x, p.y - q.y);
      EXPECT_GT(dist, 1e-6) << "leaves must not collide";
    }
  }
}

TEST(Ascii, RendersEveryLeafLabelOnItsOwnLine) {
  const GeneralTree tree = sample_tree();
  const std::string art = render_ascii(tree);
  for (const char* label : {"a", "b", "c", "d", "e", "f"}) {
    EXPECT_NE(art.find(std::string(" ") + label), std::string::npos) << art;
  }
  // Contains drawing characters.
  EXPECT_NE(art.find('-'), std::string::npos);
  EXPECT_NE(art.find('+'), std::string::npos);
}

TEST(Ascii, SupportValuesShown) {
  GeneralTree tree = parse_newick("((a:1,b:1)0.85:1,c:1,d:1);");
  AsciiOptions options;
  options.show_support = true;
  const std::string art = render_ascii(tree, options);
  EXPECT_NE(art.find("85"), std::string::npos) << art;
}

TEST(Svg, SingleTreeDocumentIsWellFormedIsh) {
  const GeneralTree tree = sample_tree();
  const std::string svg = render_svg(tree);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  for (const char* label : {">a<", ">b<", ">f<"}) {
    EXPECT_NE(svg.find(label), std::string::npos);
  }
  // One path per non-root edge.
  std::size_t paths = 0;
  for (std::size_t at = svg.find("<path"); at != std::string::npos;
       at = svg.find("<path", at + 1)) {
    ++paths;
  }
  EXPECT_EQ(paths, tree.size() - 1);
}

TEST(Svg, EscapesLabels) {
  GeneralTree tree;
  tree.make_root();
  tree.add_child(tree.root(), "A&B<C>", 1.0);
  tree.add_child(tree.root(), "plain", 1.0);
  const std::string svg = render_svg(tree);
  EXPECT_NE(svg.find("A&amp;B&lt;C&gt;"), std::string::npos);
  EXPECT_EQ(svg.find("A&B<C>"), std::string::npos);
}

TEST(Svg, ComparisonPanelsAndTraces) {
  GeneralTree a = parse_newick("((x:1,y:1):1,(z:1,w:1):1);");
  GeneralTree b = parse_newick("((x:1,z:1):1,(y:1,w:1):1);");
  const std::string svg =
      render_comparison_svg({a, b}, {"x", "w"}, {"run 1", "run 2"});
  EXPECT_NE(svg.find("run 1"), std::string::npos);
  EXPECT_NE(svg.find("run 2"), std::string::npos);
  // Two polyline traces and 4 trace markers.
  std::size_t polylines = 0;
  for (std::size_t at = svg.find("<polyline"); at != std::string::npos;
       at = svg.find("<polyline", at + 1)) {
    ++polylines;
  }
  EXPECT_EQ(polylines, 2u);
  std::size_t circles = 0;
  for (std::size_t at = svg.find("<circle"); at != std::string::npos;
       at = svg.find("<circle", at + 1)) {
    ++circles;
  }
  EXPECT_EQ(circles, 4u);
}

TEST(Svg, CanonicalizationMakesEquivalentDrawingsIdentical) {
  // Same topology with reversed branch orders: after the comparison view's
  // pivot normalization, both panels render identical tree geometry.
  GeneralTree a = parse_newick("((b:1,a:1):1,(d:1,c:1):1);");
  GeneralTree b = parse_newick("((c:1,d:1):1,(a:1,b:1):1);");
  const SvgOptions options;
  const std::string one = render_svg([&] {
    GeneralTree t = a;
    t.canonicalize();
    return t;
  }(), options);
  const std::string two = render_svg([&] {
    GeneralTree t = b;
    t.canonicalize();
    return t;
  }(), options);
  EXPECT_EQ(one, two);
}

}  // namespace
}  // namespace fdml
