// Tests for the message fabric, the protocol codecs, and the full
// master/foreman/worker/monitor runtime — including the paper's timeout
// fault tolerance (requeue, delinquency, reinstatement).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "comm/fault.hpp"
#include "comm/integrity.hpp"
#include "comm/transport.hpp"
#include "model/simulate.hpp"
#include "parallel/cluster.hpp"
#include "parallel/foreman.hpp"
#include "parallel/protocol.hpp"
#include "search/search.hpp"
#include "tree/newick.hpp"
#include "tree/random.hpp"
#include "tree/splits.hpp"

namespace fdml {
namespace {

TEST(Fabric, PointToPointDelivery) {
  ThreadFabric fabric(4);
  auto a = fabric.endpoint(0);
  auto b = fabric.endpoint(3);
  a->send(3, MessageTag::kTask, {1, 2, 3});
  const auto message = b->recv();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->source, 0);
  EXPECT_EQ(message->tag, MessageTag::kTask);
  EXPECT_EQ(message->payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(fabric.messages_sent(), 1u);
  EXPECT_EQ(fabric.bytes_sent(), 3u);
}

TEST(Fabric, RecvForTimesOutAndCloseUnblocks) {
  ThreadFabric fabric(2);
  auto endpoint = fabric.endpoint(1);
  EXPECT_FALSE(endpoint->recv_for(std::chrono::milliseconds(10)).has_value());
  EXPECT_FALSE(endpoint->closed());

  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fabric.close();
  });
  const auto message = endpoint->recv();
  EXPECT_FALSE(message.has_value());
  EXPECT_TRUE(endpoint->closed());
  closer.join();
}

TEST(Fabric, CrossThreadPingPong) {
  ThreadFabric fabric(2);
  std::thread echo([&] {
    auto endpoint = fabric.endpoint(1);
    while (auto message = endpoint->recv()) {
      if (message->tag == MessageTag::kShutdown) break;
      endpoint->send(0, MessageTag::kResult, std::move(message->payload));
    }
  });
  auto endpoint = fabric.endpoint(0);
  for (std::uint8_t i = 0; i < 50; ++i) {
    endpoint->send(1, MessageTag::kTask, {i});
    const auto reply = endpoint->recv();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->payload[0], i);
  }
  endpoint->send(1, MessageTag::kShutdown, {});
  echo.join();
}

TEST(Fabric, RejectsBadRanks) {
  ThreadFabric fabric(3);
  EXPECT_THROW(fabric.endpoint(5), std::out_of_range);
  auto endpoint = fabric.endpoint(0);
  EXPECT_THROW(endpoint->send(7, MessageTag::kTask, {}), std::out_of_range);
  EXPECT_THROW(ThreadFabric(1), std::invalid_argument);
}

TEST(Protocol, RoundMessageRoundTrip) {
  RoundMessage round;
  round.round_id = 12;
  for (int i = 0; i < 3; ++i) {
    TreeTask task;
    task.task_id = static_cast<std::uint64_t>(100 + i);
    task.newick = "(a:1,b:1,c:1);";
    task.focus_taxon = i;
    round.tasks.push_back(task);
  }
  const RoundMessage back = RoundMessage::unpack(round.pack());
  EXPECT_EQ(back.round_id, 12u);
  ASSERT_EQ(back.tasks.size(), 3u);
  EXPECT_EQ(back.tasks[2].task_id, 102u);
  EXPECT_EQ(back.tasks[2].focus_taxon, 2);
}

TEST(Protocol, RoundDoneAndMonitorEventRoundTrip) {
  RoundDoneMessage done;
  done.round_id = 5;
  done.best.task_id = 9;
  done.best.log_likelihood = -321.75;
  done.best.newick = "(x:1,y:1,z:1);";
  done.stats.push_back({9, 0.125, 512, 4});
  const RoundDoneMessage back = RoundDoneMessage::unpack(done.pack());
  EXPECT_DOUBLE_EQ(back.best.log_likelihood, -321.75);
  ASSERT_EQ(back.stats.size(), 1u);
  EXPECT_EQ(back.stats[0].bytes, 512u);
  EXPECT_EQ(back.stats[0].worker, 4);

  MonitorEvent event;
  event.kind = MonitorEventKind::kRequeue;
  event.round_id = 5;
  event.task_id = 9;
  event.worker = 6;
  event.at_seconds = 1.5;
  const MonitorEvent eback = MonitorEvent::unpack(event.pack());
  EXPECT_EQ(eback.kind, MonitorEventKind::kRequeue);
  EXPECT_EQ(eback.worker, 6);
  EXPECT_DOUBLE_EQ(eback.at_seconds, 1.5);
}

// --- scripted foreman (transport-level) ---

TreeTask recv_task(Transport& endpoint) {
  auto message = endpoint.recv();
  EXPECT_TRUE(message.has_value());
  EXPECT_EQ(message->tag, MessageTag::kTask);
  EXPECT_TRUE(open_payload(message->payload));
  Unpacker unpacker(message->payload);
  return TreeTask::unpack(unpacker);
}

void send_result(Transport& endpoint, std::uint64_t task_id,
                 std::uint64_t round_id) {
  TaskResult result;
  result.task_id = task_id;
  result.round_id = round_id;
  result.log_likelihood = -100.0 - static_cast<double>(task_id);
  result.newick = "(a:1,b:1,c:1);";
  Packer packer;
  result.pack(packer);
  auto payload = packer.take();
  seal_payload(payload);
  endpoint.send(kForemanRank, MessageTag::kResult, std::move(payload));
}

void send_round(Transport& endpoint, std::uint64_t round_id,
                std::initializer_list<std::uint64_t> task_ids) {
  RoundMessage round;
  round.round_id = round_id;
  for (std::uint64_t id : task_ids) {
    TreeTask task;
    task.task_id = id;
    task.round_id = round_id;
    task.newick = "(a:1,b:1,c:1);";
    round.tasks.push_back(task);
  }
  auto payload = round.pack();
  seal_payload(payload);
  endpoint.send(kForemanRank, MessageTag::kRound, std::move(payload));
}

/// Waits for the round's kRoundDone, skipping the kProgress heartbeats the
/// hardened foreman interleaves.
std::optional<RoundDoneMessage> recv_round_done(
    Transport& endpoint,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(2000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return std::nullopt;
    auto message = endpoint.recv_for(remaining);
    if (!message.has_value()) return std::nullopt;
    if (message->tag != MessageTag::kRoundDone) continue;
    EXPECT_TRUE(open_payload(message->payload));
    return RoundDoneMessage::unpack(message->payload);
  }
}

// Regression: a delinquent worker's stale result (for a task the foreman had
// already requeued and accepted) used to push the worker onto the ready
// queue a second time while its new task was still in flight. The next round
// then dispatched two tasks to the same worker back-to-back, overwriting the
// in-flight record and silently losing a task. The test scripts a single
// worker against a live foreman and asserts exactly-once dispatch.
TEST(Foreman, StaleResultDoesNotDoubleBookWorker) {
  ThreadFabric fabric(4);  // master, foreman, monitor, one worker
  ForemanOptions options;
  options.worker_timeout = std::chrono::milliseconds(400);
  options.notify_monitor = false;
  auto foreman_endpoint = fabric.endpoint(kForemanRank);
  ForemanStats stats;
  std::thread foreman(
      [&] { stats = foreman_main(*foreman_endpoint, options); });

  auto master = fabric.endpoint(kMasterRank);
  auto worker = fabric.endpoint(kFirstWorkerRank);
  worker->send(kForemanRank, MessageTag::kHello, {});
  send_round(*master, 1, {1, 2});

  EXPECT_EQ(recv_task(*worker).task_id, 1u);
  // Hold task 1 past the timeout: the foreman requeues it and marks the
  // worker delinquent.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  // The late reply reinstates the worker and completes task 1 (the requeued
  // copy is dropped from the queue); task 2 is dispatched next.
  send_result(*worker, 1, 1);
  EXPECT_EQ(recv_task(*worker).task_id, 2u);
  // A stale duplicate of task 1 arrives while task 2 is in flight — the
  // mismatch that used to double-book the worker.
  send_result(*worker, 1, 1);
  send_result(*worker, 2, 1);

  const auto done1 = recv_round_done(*master);
  ASSERT_TRUE(done1.has_value());
  EXPECT_EQ(done1->stats.size(), 2u);

  send_round(*master, 2, {10, 11, 12});
  EXPECT_EQ(recv_task(*worker).task_id, 10u);
  // Exactly-once dispatch: with task 10 in flight no second task may arrive.
  const auto double_booked =
      worker->recv_for(std::chrono::milliseconds(120));
  EXPECT_FALSE(double_booked.has_value())
      << "worker dispatched a second task while one is in flight";

  // Finish the round, answering whatever is dispatched.
  if (double_booked.has_value() && double_booked->tag == MessageTag::kTask) {
    auto payload = double_booked->payload;
    EXPECT_TRUE(open_payload(payload));
    Unpacker unpacker(payload);
    send_result(*worker, TreeTask::unpack(unpacker).task_id, 2);
  }
  send_result(*worker, 10, 2);
  for (;;) {
    auto message = worker->recv_for(std::chrono::milliseconds(500));
    if (!message.has_value() || message->tag != MessageTag::kTask) break;
    EXPECT_TRUE(open_payload(message->payload));
    Unpacker unpacker(message->payload);
    send_result(*worker, TreeTask::unpack(unpacker).task_id, 2);
  }

  const auto done2 = recv_round_done(*master);
  ASSERT_TRUE(done2.has_value());
  EXPECT_EQ(done2->stats.size(), 3u);
  EXPECT_EQ(done2->best.task_id, 10u);

  master->send(kForemanRank, MessageTag::kShutdown, {});
  foreman.join();

  // No task was lost or double-counted anywhere in the exchange.
  EXPECT_EQ(stats.rounds, 2u);
  EXPECT_EQ(stats.tasks_completed, 5u);
  EXPECT_EQ(stats.mismatched_results, 1u);
  EXPECT_GE(stats.requeues, 1u);
  EXPECT_GE(stats.reinstatements, 1u);
  EXPECT_GE(stats.late_duplicate_results, 1u);
}

// --- full runtime ---

struct ParallelFixture {
  ParallelFixture(int taxa = 9, std::size_t sites = 200)
      : truth(3), alignment(make(taxa, sites, truth)), data(alignment) {}

  static Alignment make(int taxa, std::size_t sites, Tree& truth_out) {
    Rng rng(77);
    truth_out = random_yule_tree(taxa, rng);
    SimulateOptions options;
    options.num_sites = sites;
    return simulate_alignment(truth_out, default_taxon_names(taxa),
                              SubstModel::jc69(), RateModel::uniform(), options,
                              rng);
  }

  Tree truth;
  Alignment alignment;
  PatternAlignment data;
};

TEST(Cluster, OneWorkerMatchesSerialExactly) {
  ParallelFixture fx;
  SearchOptions options;
  options.seed = 5;

  SerialTaskRunner serial(fx.data, SubstModel::jc69(), RateModel::uniform());
  const SearchResult serial_result =
      StepwiseSearch(fx.data, options).run(serial);

  ClusterOptions cluster_options;
  cluster_options.num_workers = 1;
  InProcessCluster cluster(fx.data, SubstModel::jc69(), RateModel::uniform(),
                           cluster_options);
  const SearchResult parallel_result =
      StepwiseSearch(fx.data, options).run(cluster.runner());

  EXPECT_EQ(parallel_result.best_newick, serial_result.best_newick);
  EXPECT_DOUBLE_EQ(parallel_result.best_log_likelihood,
                   serial_result.best_log_likelihood);
  EXPECT_EQ(parallel_result.trees_evaluated, serial_result.trees_evaluated);
}

TEST(Cluster, FourWorkersFindEquallyGoodTree) {
  ParallelFixture fx;
  SearchOptions options;
  options.seed = 5;

  SerialTaskRunner serial(fx.data, SubstModel::jc69(), RateModel::uniform());
  const SearchResult serial_result =
      StepwiseSearch(fx.data, options).run(serial);

  ClusterOptions cluster_options;
  cluster_options.num_workers = 4;
  InProcessCluster cluster(fx.data, SubstModel::jc69(), RateModel::uniform(),
                           cluster_options);
  const SearchResult parallel_result =
      StepwiseSearch(fx.data, options).run(cluster.runner());

  // Completion order may break likelihood ties differently, so compare
  // quality, not identity.
  EXPECT_NEAR(parallel_result.best_log_likelihood,
              serial_result.best_log_likelihood, 1e-6);

  // Monitor events are asynchronous; shut down (joining the monitor thread,
  // which drains its queue first) before snapshotting.
  cluster.shutdown();
  const MonitorReport report = cluster.monitor_report();
  EXPECT_EQ(report.completions, parallel_result.trees_evaluated);
  EXPECT_EQ(report.requeues, 0u);
  // Work actually spread across workers.
  int busy_workers = 0;
  for (const auto& [worker, count] : report.tasks_per_worker) {
    if (count > 0) ++busy_workers;
  }
  EXPECT_GE(busy_workers, 2);
  EXPECT_EQ(report.rounds, parallel_result.trace.rounds.size());
}

TEST(Cluster, WorkerStatsCarriedInTrace) {
  ParallelFixture fx;
  ClusterOptions cluster_options;
  cluster_options.num_workers = 2;
  InProcessCluster cluster(fx.data, SubstModel::jc69(), RateModel::uniform(),
                           cluster_options);
  SearchOptions options;
  options.seed = 3;
  const SearchResult result = StepwiseSearch(fx.data, options).run(cluster.runner());
  for (const auto& round : result.trace.rounds) {
    ASSERT_EQ(round.task_bytes.size(), round.task_cpu_seconds.size());
    for (std::size_t i = 0; i < round.task_bytes.size(); ++i) {
      EXPECT_GT(round.task_bytes[i], 0u);
      EXPECT_GE(round.task_cpu_seconds[i], 0.0);
    }
  }
}

TEST(Cluster, DroppedResultIsRequeuedToAnotherWorker) {
  ParallelFixture fx(8, 120);
  ClusterOptions cluster_options;
  cluster_options.num_workers = 2;
  cluster_options.foreman.worker_timeout = std::chrono::milliseconds(100);
  // Worker rank 3 silently drops its first result: a "crashed" worker.
  auto drop_count = std::make_shared<std::atomic<int>>(0);
  cluster_options.wrap_worker_transport =
      [drop_count](int rank, std::unique_ptr<Transport> inner)
      -> std::unique_ptr<Transport> {
    if (rank != kFirstWorkerRank) return inner;
    return std::make_unique<FaultyTransport>(
        std::move(inner),
        [drop_count](const Message& message) {
          return message.tag == MessageTag::kResult &&
                 drop_count->fetch_add(1) == 0;
        },
        nullptr);
  };
  InProcessCluster cluster(fx.data, SubstModel::jc69(), RateModel::uniform(),
                           cluster_options);
  SearchOptions options;
  options.seed = 9;
  const SearchResult result = StepwiseSearch(fx.data, options).run(cluster.runner());
  EXPECT_LT(result.best_log_likelihood, 0.0);
  cluster.shutdown();
  EXPECT_GE(cluster.foreman_stats().requeues, 1u);
  EXPECT_GE(cluster.foreman_stats().delinquencies, 1u);
  EXPECT_EQ(cluster.foreman_stats().tasks_completed, result.trees_evaluated);
  const MonitorReport report = cluster.monitor_report();
  EXPECT_GE(report.requeues, 1u);
}

TEST(Cluster, SlowWorkerIsReinstatedAfterLateReply) {
  ParallelFixture fx(8, 120);
  ClusterOptions cluster_options;
  cluster_options.num_workers = 2;
  cluster_options.foreman.worker_timeout = std::chrono::milliseconds(80);
  // Worker rank 3 delays its first result well past the timeout, then
  // behaves normally — the paper's geographically-distributed-PVM scenario.
  auto slow_count = std::make_shared<std::atomic<int>>(0);
  cluster_options.wrap_worker_transport =
      [slow_count](int rank, std::unique_ptr<Transport> inner)
      -> std::unique_ptr<Transport> {
    if (rank != kFirstWorkerRank) return inner;
    return std::make_unique<FaultyTransport>(
        std::move(inner), nullptr, [slow_count](const Message& message) {
          if (message.tag == MessageTag::kResult &&
              slow_count->fetch_add(1) == 0) {
            return std::chrono::milliseconds(250);
          }
          return std::chrono::milliseconds(0);
        });
  };
  InProcessCluster cluster(fx.data, SubstModel::jc69(), RateModel::uniform(),
                           cluster_options);
  SearchOptions options;
  options.seed = 13;
  const SearchResult result = StepwiseSearch(fx.data, options).run(cluster.runner());
  EXPECT_LT(result.best_log_likelihood, 0.0);
  // The search can outrun the delayed reply; give the late result time to
  // reach the foreman before tearing the cluster down.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  cluster.shutdown();
  EXPECT_GE(cluster.foreman_stats().requeues, 1u);
  EXPECT_GE(cluster.foreman_stats().reinstatements, 1u);
  EXPECT_GE(cluster.foreman_stats().late_duplicate_results, 1u);
}

TEST(Cluster, ShutdownIsIdempotent) {
  ParallelFixture fx(8, 60);
  ClusterOptions cluster_options;
  cluster_options.num_workers = 2;
  InProcessCluster cluster(fx.data, SubstModel::jc69(), RateModel::uniform(),
                           cluster_options);
  TreeTask task;
  Rng rng(1);
  const Tree tree = random_tree(8, rng);
  task.task_id = 1;
  task.newick = to_newick(tree, fx.data.names(), 17);
  const RoundOutcome outcome = cluster.runner().run_round({task});
  EXPECT_EQ(outcome.stats.size(), 1u);
  cluster.shutdown();
  cluster.shutdown();  // second call must be a no-op
}

TEST(Cluster, MonitorMeasuresRoundSlack) {
  ParallelFixture fx(9, 150);
  ClusterOptions cluster_options;
  cluster_options.num_workers = 3;
  InProcessCluster cluster(fx.data, SubstModel::jc69(), RateModel::uniform(),
                           cluster_options);
  SearchOptions options;
  options.seed = 21;
  const SearchResult result = StepwiseSearch(fx.data, options).run(cluster.runner());
  (void)result;
  cluster.shutdown();  // join the monitor so every event is tallied
  const MonitorReport report = cluster.monitor_report();
  EXPECT_EQ(report.round_slack_seconds.size(), report.rounds);
  EXPECT_EQ(report.round_duration_seconds.size(), report.rounds);
  for (std::size_t r = 0; r < report.rounds; ++r) {
    EXPECT_GE(report.round_slack_seconds[r], 0.0);
    EXPECT_GE(report.round_duration_seconds[r],
              report.round_slack_seconds[r] - 1e-9)
        << "slack cannot exceed the round duration";
  }
}

}  // namespace
}  // namespace fdml
