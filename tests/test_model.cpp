// Tests for substitution models, rate heterogeneity and the sequence
// simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "model/rates.hpp"
#include "model/simulate.hpp"
#include "model/submodel.hpp"
#include "tree/random.hpp"
#include "util/linalg.hpp"
#include "util/rng.hpp"

namespace fdml {
namespace {

std::vector<SubstModel> all_models() {
  const Vec4 pi{0.3, 0.2, 0.15, 0.35};
  std::vector<SubstModel> models;
  models.push_back(SubstModel::jc69());
  models.push_back(SubstModel::k80(3.0));
  models.push_back(SubstModel::f81(pi));
  models.push_back(SubstModel::hky85(pi, 4.0));
  models.push_back(SubstModel::f84(pi, 1.5));
  models.push_back(SubstModel::gtr(pi, {1.2, 3.0, 0.7, 1.1, 4.2, 1.0}));
  return models;
}

class AllModels : public ::testing::TestWithParam<int> {
 protected:
  SubstModel model() const {
    return all_models()[static_cast<std::size_t>(GetParam())];
  }
};

INSTANTIATE_TEST_SUITE_P(Family, AllModels, ::testing::Range(0, 6));

TEST_P(AllModels, RowsOfPSumToOne) {
  const SubstModel m = model();
  Mat4 p{};
  for (double t : {0.0, 0.01, 0.1, 1.0, 10.0, 60.0}) {
    m.transition(t, p);
    for (int i = 0; i < 4; ++i) {
      double row = 0.0;
      for (int j = 0; j < 4; ++j) {
        EXPECT_GE(p[i][j], 0.0);
        row += p[i][j];
      }
      EXPECT_NEAR(row, 1.0, 1e-10) << m.name() << " t=" << t << " row " << i;
    }
  }
}

TEST_P(AllModels, PZeroIsIdentity) {
  const SubstModel m = model();
  Mat4 p{};
  m.transition(0.0, p);
  EXPECT_LT(mat4_max_abs_diff(p, mat4_identity()), 1e-12) << m.name();
}

TEST_P(AllModels, PInfinityIsStationary) {
  const SubstModel m = model();
  Mat4 p{};
  m.transition(500.0, p);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(p[i][j], m.frequencies()[j], 1e-9) << m.name();
    }
  }
}

TEST_P(AllModels, DetailedBalance) {
  const SubstModel m = model();
  const Vec4& pi = m.frequencies();
  Mat4 p{};
  for (double t : {0.05, 0.5, 2.0}) {
    m.transition(t, p);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_NEAR(pi[i] * p[i][j], pi[j] * p[j][i], 1e-12)
            << m.name() << " reversibility at t=" << t;
      }
    }
  }
}

TEST_P(AllModels, MatchesDenseMatrixExponential) {
  const SubstModel m = model();
  for (double t : {0.02, 0.3, 1.7}) {
    Mat4 qt = m.rate_matrix();
    for (auto& row : qt) {
      for (double& x : row) x *= t;
    }
    const Mat4 oracle = mat4_expm(qt);
    Mat4 p{};
    m.transition(t, p);
    EXPECT_LT(mat4_max_abs_diff(p, oracle), 1e-10) << m.name() << " t=" << t;
  }
}

TEST_P(AllModels, UnitMeanRate) {
  const SubstModel m = model();
  const Mat4& q = m.rate_matrix();
  double mu = 0.0;
  for (int i = 0; i < 4; ++i) mu -= m.frequencies()[i] * q[i][i];
  EXPECT_NEAR(mu, 1.0, 1e-12) << m.name();
}

TEST_P(AllModels, DerivativesMatchFiniteDifferences) {
  const SubstModel m = model();
  Mat4 p{};
  Mat4 dp{};
  Mat4 d2p{};
  Mat4 plus{};
  Mat4 minus{};
  const double t = 0.37;
  const double h = 1e-5;
  m.transition_with_derivs(t, p, dp, d2p);
  m.transition(t + h, plus);
  m.transition(t - h, minus);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const double fd1 = (plus[i][j] - minus[i][j]) / (2.0 * h);
      const double fd2 = (plus[i][j] - 2.0 * p[i][j] + minus[i][j]) / (h * h);
      EXPECT_NEAR(dp[i][j], fd1, 1e-6) << m.name();
      EXPECT_NEAR(d2p[i][j], fd2, 1e-4) << m.name();
    }
  }
}

TEST(SubstModel, Jc69ClosedForm) {
  const SubstModel m = SubstModel::jc69();
  Mat4 p{};
  for (double t : {0.1, 0.5, 2.0}) {
    m.transition(t, p);
    // JC69: P_ii = 1/4 + 3/4 e^{-4t/3}, P_ij = 1/4 - 1/4 e^{-4t/3}.
    const double e = std::exp(-4.0 * t / 3.0);
    EXPECT_NEAR(p[0][0], 0.25 + 0.75 * e, 1e-12);
    EXPECT_NEAR(p[0][1], 0.25 - 0.25 * e, 1e-12);
    EXPECT_NEAR(p[2][3], 0.25 - 0.25 * e, 1e-12);
  }
}

TEST(SubstModel, K80TransitionsExceedTransversions) {
  const SubstModel m = SubstModel::k80(5.0);
  Mat4 p{};
  m.transition(0.2, p);
  EXPECT_GT(p[0][2], p[0][1]) << "A->G (transition) > A->C (transversion)";
  EXPECT_GT(p[1][3], p[1][0]);
}

TEST(SubstModel, F84TstvRoundTrip) {
  const Vec4 pi{0.28, 0.21, 0.26, 0.25};
  for (double ratio : {1.0, 2.0, 4.0}) {
    const SubstModel m = SubstModel::f84_from_tstv(pi, ratio);
    EXPECT_NEAR(m.tstv_ratio(), ratio, 1e-9);
  }
}

TEST(SubstModel, F84ZeroKEqualsF81) {
  const Vec4 pi{0.3, 0.2, 0.15, 0.35};
  const SubstModel f84 = SubstModel::f84(pi, 0.0);
  const SubstModel f81 = SubstModel::f81(pi);
  Mat4 a{};
  Mat4 b{};
  f84.transition(0.42, a);
  f81.transition(0.42, b);
  EXPECT_LT(mat4_max_abs_diff(a, b), 1e-12);
}

TEST(SubstModel, F84RejectsImpossibleRatio) {
  const Vec4 pi{0.25, 0.25, 0.25, 0.25};
  EXPECT_THROW(SubstModel::f84_from_tstv(pi, 0.01), std::invalid_argument);
}

TEST(SubstModel, RejectsBadInput) {
  EXPECT_THROW(SubstModel::f81({0.5, 0.5, 0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(SubstModel::k80(-1.0), std::invalid_argument);
  EXPECT_THROW(SubstModel::gtr({0.25, 0.25, 0.25, 0.25}, {1, 1, 1, 1, 1, -2}),
               std::invalid_argument);
}

// --- rates ---

TEST(Rates, UniformIsSingleUnitCategory) {
  const RateModel r = RateModel::uniform();
  EXPECT_EQ(r.num_categories(), 1u);
  EXPECT_DOUBLE_EQ(r.rate(0), 1.0);
  EXPECT_DOUBLE_EQ(r.mean_rate(), 1.0);
}

class GammaCategories : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(GammaCategories, MeanOneAndMonotone) {
  const auto [alpha, k] = GetParam();
  const RateModel r = RateModel::discrete_gamma(alpha, k);
  EXPECT_EQ(r.num_categories(), static_cast<std::size_t>(k));
  EXPECT_NEAR(r.mean_rate(), 1.0, 1e-9);
  for (std::size_t c = 0; c + 1 < r.num_categories(); ++c) {
    EXPECT_LT(r.rate(c), r.rate(c + 1));
    EXPECT_NEAR(r.probability(c), 1.0 / k, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GammaCategories,
    ::testing::Combine(::testing::Values(0.2, 0.5, 1.0, 2.0, 10.0),
                       ::testing::Values(1, 2, 4, 8)));

TEST(Rates, GammaSpreadShrinksWithAlpha) {
  const RateModel dispersed = RateModel::discrete_gamma(0.3, 4);
  const RateModel tight = RateModel::discrete_gamma(20.0, 4);
  const double spread_dispersed = dispersed.rate(3) - dispersed.rate(0);
  const double spread_tight = tight.rate(3) - tight.rate(0);
  EXPECT_GT(spread_dispersed, 5.0 * spread_tight);
}

TEST(Rates, GammaInvariantAddsZeroCategory) {
  const RateModel r = RateModel::gamma_invariant(0.5, 4, 0.2);
  EXPECT_EQ(r.num_categories(), 5u);
  EXPECT_DOUBLE_EQ(r.rate(0), 0.0);
  EXPECT_NEAR(r.probability(0), 0.2, 1e-12);
  EXPECT_NEAR(r.mean_rate(), 1.0, 1e-9);
}

TEST(Rates, UserCategoriesAreNormalized) {
  const RateModel r = RateModel::user({2.0, 6.0}, {3.0, 1.0});
  EXPECT_NEAR(r.probability(0), 0.75, 1e-12);
  EXPECT_NEAR(r.mean_rate(), 1.0, 1e-12);
  // Relative spacing preserved: r1/r0 = 3.
  EXPECT_NEAR(r.rate(1) / r.rate(0), 3.0, 1e-12);
}

TEST(Rates, RejectsBadInput) {
  EXPECT_THROW(RateModel::discrete_gamma(-1.0, 4), std::invalid_argument);
  EXPECT_THROW(RateModel::discrete_gamma(1.0, 0), std::invalid_argument);
  EXPECT_THROW(RateModel::user({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(RateModel::user({0.0}, {1.0}), std::invalid_argument);
}

// --- simulator ---

TEST(Simulate, ReproducibleAndShapedCorrectly) {
  Rng rng1(9);
  Rng rng2(9);
  Tree tree = random_yule_tree(12, rng1);
  Rng sim1(5);
  Rng sim2(5);
  SimulateOptions options;
  options.num_sites = 300;
  const SubstModel model = SubstModel::jc69();
  const RateModel rates = RateModel::uniform();
  const auto names = default_taxon_names(12);
  const Alignment a = simulate_alignment(tree, names, model, rates, options, sim1);
  const Alignment b = simulate_alignment(tree, names, model, rates, options, sim2);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.num_taxa(), 12u);
  EXPECT_EQ(a.num_sites(), 300u);
}

TEST(Simulate, BaseCompositionTracksModel) {
  Rng rng(21);
  Tree tree = random_yule_tree(20, rng);
  const Vec4 pi{0.4, 0.1, 0.1, 0.4};
  const SubstModel model = SubstModel::f81(pi);
  SimulateOptions options;
  options.num_sites = 4000;
  const Alignment alignment = simulate_alignment(
      tree, default_taxon_names(20), model, RateModel::uniform(), options, rng);
  const Vec4 freq = alignment.base_frequencies();
  for (int b = 0; b < 4; ++b) EXPECT_NEAR(freq[b], pi[b], 0.03);
}

TEST(Simulate, DivergenceGrowsWithBranchLength) {
  // Two-taxon comparison via a 3-taxon tree with one variable branch.
  const auto names = default_taxon_names(3);
  const SubstModel model = SubstModel::jc69();
  SimulateOptions options;
  options.num_sites = 3000;
  double previous_identity = 1.0;
  for (double t : {0.01, 0.2, 1.0}) {
    Tree tree(3);
    tree.make_triplet(0, 1, 2, t / 2, t / 2, 0.01);
    Rng rng(33);
    const Alignment alignment =
        simulate_alignment(tree, names, model, RateModel::uniform(), options, rng);
    std::size_t same = 0;
    for (std::size_t s = 0; s < alignment.num_sites(); ++s) {
      if (alignment.at(0, s) == alignment.at(1, s)) ++same;
    }
    const double identity = static_cast<double>(same) / alignment.num_sites();
    EXPECT_LT(identity, previous_identity + 0.02);
    previous_identity = identity;
  }
  EXPECT_LT(previous_identity, 0.65) << "t=1.0 should show heavy divergence";
}

TEST(Simulate, MissingDataFractionRespected) {
  Rng rng(44);
  Tree tree = random_yule_tree(8, rng);
  SimulateOptions options;
  options.num_sites = 2000;
  options.missing_fraction = 0.1;
  const Alignment alignment =
      simulate_alignment(tree, default_taxon_names(8), SubstModel::jc69(),
                         RateModel::uniform(), options, rng);
  EXPECT_NEAR(alignment.ambiguous_fraction(), 0.1, 0.015);
}

TEST(Simulate, PaperLikeDatasetDimensions) {
  Tree truth(3);
  const Alignment alignment = make_paper_like_dataset(50, 500, 42, &truth);
  EXPECT_EQ(alignment.num_taxa(), 50u);
  EXPECT_EQ(alignment.num_sites(), 500u);
  EXPECT_EQ(truth.tip_count(), 50);
  // Deterministic for a given seed. (Note: even seeds are adjusted to the
  // next odd value per fastDNAml, so 42 and 43 would collide by design.)
  const Alignment again = make_paper_like_dataset(50, 500, 42);
  EXPECT_TRUE(alignment == again);
  const Alignment different = make_paper_like_dataset(50, 500, 45);
  EXPECT_FALSE(alignment == different);
}

}  // namespace
}  // namespace fdml
