// Tests for the fdmld service layer: the service-plane codecs, bounded
// admission with explicit shed reasons, the job scheduler's fairness /
// supervision / drain contracts, and the socket-layer chaos proxy driving
// the reconnect-and-re-admission machinery end to end (the in-process
// version of the CI soak).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "comm/chaos_proxy.hpp"
#include "model/simulate.hpp"
#include "parallel/socket_cluster.hpp"
#include "search/search.hpp"
#include "service/admission.hpp"
#include "service/job.hpp"
#include "service/scheduler.hpp"
#include "service/server.hpp"
#include "tree/random.hpp"
#include "util/rng.hpp"

namespace fdml {
namespace {

// ---------------------------------------------------------------------------
// Service-plane codecs

TEST(ServiceCodec, JobSpecRoundTrip) {
  JobSpec spec;
  spec.seed = 99;
  spec.rearrange_cross = 2;
  spec.final_rearrange_cross = 5;
  spec.name = "night-run";
  const JobSpec back = JobSpec::decode(spec.encode());
  EXPECT_EQ(back.seed, 99u);
  EXPECT_EQ(back.rearrange_cross, 2);
  EXPECT_EQ(back.final_rearrange_cross, 5);
  EXPECT_EQ(back.name, "night-run");
}

TEST(ServiceCodec, JobOutcomeRoundTrip) {
  JobOutcome outcome;
  outcome.job_id = 7;
  outcome.status = JobStatus::kInterrupted;
  outcome.newick = "((A,B),(C,D));";
  outcome.log_likelihood = -1234.5;
  outcome.resume_generation = 12;
  outcome.retries = 2;
  outcome.error = "drained";
  const JobOutcome back = JobOutcome::decode(outcome.encode());
  EXPECT_EQ(back.job_id, 7u);
  EXPECT_EQ(back.status, JobStatus::kInterrupted);
  EXPECT_EQ(back.newick, outcome.newick);
  EXPECT_EQ(back.log_likelihood, -1234.5);
  EXPECT_EQ(back.resume_generation, 12u);
  EXPECT_EQ(back.retries, 2u);
  EXPECT_EQ(back.error, "drained");
}

TEST(ServiceCodec, CorruptBytesThrowNeverCrash) {
  // The service endpoint decodes bytes from arbitrary clients; every
  // single-byte flip and truncation must throw or decode cleanly — never
  // crash, hang, or allocate from a corrupt length.
  const auto exercise = [](const std::vector<std::uint8_t>& bytes,
                           auto decode) {
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      for (const std::uint8_t mask :
           {std::uint8_t{0xFF}, std::uint8_t{0x01}, std::uint8_t{0x80}}) {
        auto corrupt = bytes;
        corrupt[i] ^= mask;
        try {
          decode(corrupt);
        } catch (const std::exception&) {
        }
      }
    }
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      const std::vector<std::uint8_t> truncated(
          bytes.begin(), bytes.begin() + static_cast<long>(cut));
      EXPECT_THROW(decode(truncated), std::exception) << "cut " << cut;
    }
  };
  exercise(JobSpec{}.encode(),
           [](const std::vector<std::uint8_t>& b) { (void)JobSpec::decode(b); });
  exercise(JobOutcome{}.encode(), [](const std::vector<std::uint8_t>& b) {
    (void)JobOutcome::decode(b);
  });
}

// ---------------------------------------------------------------------------
// Admission control

TEST(Admission, BoundedQueueShedsWithReason) {
  obs::MetricsRegistry registry;
  AdmissionOptions options;
  options.max_active = 1;
  options.max_queued = 1;
  AdmissionController admission(options, registry);

  EXPECT_FALSE(admission.try_admit().has_value());  // active slot
  EXPECT_FALSE(admission.try_admit().has_value());  // queue slot
  const auto shed = admission.try_admit();          // over capacity
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(*shed, RejectReason::kQueueFull);
  EXPECT_STREQ(reject_reason_name(*shed), "queue_full");

  // A finished job frees capacity; the queue is bounded, never growing.
  admission.release();
  EXPECT_FALSE(admission.try_admit().has_value());

  EXPECT_EQ(registry.snapshot().counter("service.jobs_submitted"), 4);
  EXPECT_EQ(registry.snapshot().counter("service.jobs_admitted"), 3);
  EXPECT_EQ(registry.snapshot().counter("service.jobs_rejected_full"), 1);
}

TEST(Admission, DrainingRejectsEverything) {
  obs::MetricsRegistry registry;
  AdmissionController admission(AdmissionOptions{}, registry);
  admission.drain();
  EXPECT_TRUE(admission.draining());
  const auto shed = admission.try_admit();
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(*shed, RejectReason::kDraining);
  EXPECT_EQ(registry.snapshot().counter("service.jobs_rejected_draining"), 1);
}

// ---------------------------------------------------------------------------
// JobScheduler over a shared runner

PatternAlignment make_test_data(int taxa, std::size_t sites) {
  return PatternAlignment(make_paper_like_dataset(taxa, sites, 4242));
}

std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

SearchResult solo_run(const PatternAlignment& data, std::uint64_t seed) {
  const SubstModel model =
      SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
  SerialTaskRunner runner(data, model, RateModel::uniform());
  SearchOptions options;
  options.seed = seed;
  options.record_trace = false;
  return StepwiseSearch(data, options).run(runner);
}

TEST(JobScheduler, ConcurrentJobsMatchSoloRunsBitForBit) {
  // Four jobs multiplexed over ONE shared runner through the round gate:
  // every tree must equal its solo (unshared) run — fair interleaving must
  // not leak state between jobs.
  const PatternAlignment data = make_test_data(8, 120);
  const SubstModel model =
      SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
  SerialTaskRunner pool(data, model, RateModel::uniform());

  obs::MetricsRegistry registry;
  SchedulerOptions options;
  options.admission.max_active = 3;
  options.admission.max_queued = 8;
  options.metrics = &registry;
  JobScheduler scheduler(data, pool, options);

  const std::vector<std::uint64_t> seeds = {11, 13, 15, 17};
  std::vector<std::uint64_t> ids;
  for (const std::uint64_t seed : seeds) {
    JobSpec spec;
    spec.seed = seed;
    const auto submission = scheduler.submit(spec);
    ASSERT_FALSE(submission.rejected.has_value());
    ids.push_back(submission.job_id);
  }
  scheduler.wait_all();

  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const JobOutcome outcome = scheduler.wait(ids[i]);
    ASSERT_EQ(outcome.status, JobStatus::kDone) << "seed " << seeds[i];
    const SearchResult reference = solo_run(data, seeds[i]);
    EXPECT_EQ(outcome.newick, reference.best_newick) << "seed " << seeds[i];
    EXPECT_EQ(outcome.log_likelihood, reference.best_log_likelihood);
  }
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, seeds.size());
  EXPECT_EQ(stats.in_flight, 0u);
  // Per-job observability exists under job.<id>.*.
  EXPECT_EQ(registry.snapshot().counter("job." + std::to_string(ids[0]) +
                                        ".completed"),
            1);
}

TEST(JobScheduler, OverCapacitySubmissionsAreShedNotQueued) {
  const PatternAlignment data = make_test_data(10, 200);
  const SubstModel model =
      SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
  SerialTaskRunner pool(data, model, RateModel::uniform());

  SchedulerOptions options;
  options.admission.max_active = 1;
  options.admission.max_queued = 1;
  obs::MetricsRegistry registry;
  options.metrics = &registry;
  JobScheduler scheduler(data, pool, options);

  JobSpec spec;
  spec.seed = 11;
  const auto first = scheduler.submit(spec);
  spec.seed = 13;
  const auto second = scheduler.submit(spec);
  spec.seed = 15;
  const auto third = scheduler.submit(spec);
  ASSERT_FALSE(first.rejected.has_value());
  ASSERT_FALSE(second.rejected.has_value());
  ASSERT_TRUE(third.rejected.has_value());
  EXPECT_EQ(*third.rejected, RejectReason::kQueueFull);

  scheduler.wait_all();
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.rejected_full, 1u);
  EXPECT_EQ(stats.in_flight, 0u);
}

TEST(JobScheduler, DrainCheckpointsInFlightAndResumeMatchesBitForBit) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "fdml_service_drain_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Big enough that the running job cannot finish before the drain lands
  // (a solo run takes ~1.5 s) but checkpoints many generations first.
  const PatternAlignment data = make_test_data(20, 500);
  const SubstModel model =
      SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
  const std::vector<std::uint64_t> seeds = {21, 23};

  {
    SerialTaskRunner pool(data, model, RateModel::uniform());
    SchedulerOptions options;
    options.admission.max_active = 1;  // one runs, one queues
    options.checkpoint_dir = dir.string();
    JobScheduler scheduler(data, pool, options);
    std::vector<std::uint64_t> ids;
    for (const std::uint64_t seed : seeds) {
      JobSpec spec;
      spec.seed = seed;
      const auto submission = scheduler.submit(spec);
      ASSERT_FALSE(submission.rejected.has_value());
      ids.push_back(submission.job_id);
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    scheduler.drain();
    scheduler.wait_all();

    // Whichever supervisor won the single active slot was interrupted at a
    // durable checkpoint (generation > 0); the queued one drained out
    // untouched (generation 0). Zero lost jobs either way.
    std::uint64_t running_generation = 0;
    for (const std::uint64_t id : ids) {
      const JobOutcome outcome = scheduler.wait(id);
      ASSERT_EQ(outcome.status, JobStatus::kInterrupted) << "job " << id;
      running_generation = std::max(running_generation,
                                    outcome.resume_generation);
    }
    EXPECT_GT(running_generation, 0u);
    EXPECT_EQ(scheduler.stats().in_flight, 0u);

    // Post-drain submissions are shed with the drain reason.
    JobSpec late_spec;
    late_spec.seed = 21;
    const auto late = scheduler.submit(late_spec);
    ASSERT_TRUE(late.rejected.has_value());
    EXPECT_EQ(*late.rejected, RejectReason::kDraining);
  }

  // A fresh scheduler (the restarted service) resumes what was
  // checkpointed and finishes with the uninterrupted runs' exact trees.
  {
    SerialTaskRunner pool(data, model, RateModel::uniform());
    SchedulerOptions options;
    options.checkpoint_dir = dir.string();
    JobScheduler scheduler(data, pool, options);
    for (const std::uint64_t seed : seeds) {
      JobSpec spec;
      spec.seed = seed;
      const auto resumed = scheduler.submit(spec);
      ASSERT_FALSE(resumed.rejected.has_value());
      const JobOutcome outcome = scheduler.wait(resumed.job_id);
      ASSERT_EQ(outcome.status, JobStatus::kDone) << "seed " << seed;
      const SearchResult reference = solo_run(data, seed);
      EXPECT_EQ(outcome.newick, reference.best_newick) << "seed " << seed;
      EXPECT_EQ(outcome.log_likelihood, reference.best_log_likelihood);
    }
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Socket-layer chaos: the in-process soak

SocketOptions chaos_fabric_options(int rank, int size, std::uint16_t port) {
  SocketOptions options;
  options.rank = rank;
  options.size = size;
  options.port = port;
  options.connect_timeout = std::chrono::milliseconds(10000);
  options.connect_retry = std::chrono::milliseconds(20);
  options.reconnect = true;
  options.reconnect_backoff = std::chrono::milliseconds(10);
  options.reconnect_budget = std::chrono::milliseconds(10000);
  return options;
}

TEST(ChaosProxySoak, SearchSurvivesLatencyCorruptionAndMidStreamCloses) {
  // The full paper layout over TCP, every peer routed through a seeded
  // fault-injecting proxy (latency + byte corruption + abrupt mid-stream
  // closes). The run must complete with the serial tree bit for bit; the
  // retry/reconnect machinery absorbs the faults.
  const PatternAlignment data = make_test_data(8, 120);
  const SubstModel model =
      SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
  const RateModel rates = RateModel::uniform();

  SearchOptions search_options;
  search_options.seed = 5;
  search_options.record_trace = false;
  SerialTaskRunner serial(data, model, rates);
  const SearchResult reference =
      StepwiseSearch(data, search_options).run(serial);

  constexpr int kSize = 5;  // master + foreman + monitor + 2 workers
  const std::uint16_t hub_port = pick_free_port();
  SocketRunOptions options;
  options.socket = chaos_fabric_options(0, kSize, hub_port);
  options.master.max_round_retries = 3;
  options.master.watchdog_timeout = std::chrono::milliseconds(3000);
  options.foreman.worker_timeout = std::chrono::milliseconds(1500);
  options.foreman.heartbeat_interval = std::chrono::milliseconds(200);

  FaultPlan plan;
  plan.seed = 77;
  plan.sock_latency = 0.10;
  plan.delay_min_ms = 1;
  plan.delay_max_ms = 5;
  plan.sock_corrupt = 0.001;
  plan.sock_close = 0.002;
  ChaosProxyOptions proxy_options;
  proxy_options.target_port = hub_port;
  proxy_options.plan = plan;

  SearchResult chaotic;
  ChaosProxyStats proxy_stats;
  {
    SocketCluster cluster(data, model, rates, options);
    ChaosProxy proxy(proxy_options);
    std::vector<std::thread> roles;
    for (int rank = 1; rank < kSize; ++rank) {
      roles.emplace_back([&, rank] {
        SocketRunOptions role_options = options;
        role_options.socket.rank = rank;
        role_options.socket.port = proxy.port();  // through the chaos
        EXPECT_NO_THROW(run_socket_role(data, model, rates, role_options));
      });
    }
    EXPECT_TRUE(cluster.wait_ready(std::chrono::milliseconds(10000)));
    chaotic = StepwiseSearch(data, search_options).run(cluster.runner());
    cluster.shutdown();
    for (auto& thread : roles) thread.join();
    proxy_stats = proxy.stats();
    proxy.close();
  }

  EXPECT_EQ(chaotic.best_newick, reference.best_newick);
  EXPECT_EQ(chaotic.best_log_likelihood, reference.best_log_likelihood);
  EXPECT_GT(proxy_stats.chunks, 0u);
}

TEST(WorkerReadmission, KilledWorkerRestartedWithSameRankIsReinstated) {
  // Satellite: kill a worker mid-run (abrupt connection loss, no goodbye —
  // indistinguishable from kill -9 at the hub and foreman), restart it with
  // the same rank, and require the foreman's health machine to walk it
  // through quarantine -> probation -> healthy while the final tree stays
  // bit-for-bit the serial one.
  // Large enough that the kill lands mid-search with plenty of rounds left
  // for the health machine to walk (a solo run takes ~1.5 s).
  const PatternAlignment data = make_test_data(20, 500);
  const SubstModel model =
      SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
  const RateModel rates = RateModel::uniform();

  SearchOptions search_options;
  search_options.seed = 9;
  search_options.record_trace = false;
  SerialTaskRunner serial(data, model, rates);
  const SearchResult reference =
      StepwiseSearch(data, search_options).run(serial);

  constexpr int kSize = 5;  // master + foreman + monitor + workers 3, 4
  const std::uint16_t hub_port = pick_free_port();

  SocketRunOptions options;
  options.socket.rank = 0;
  options.socket.size = kSize;
  options.socket.port = hub_port;
  options.socket.connect_timeout = std::chrono::milliseconds(10000);
  options.socket.connect_retry = std::chrono::milliseconds(20);
  options.master.max_round_retries = 3;
  options.master.watchdog_timeout = std::chrono::milliseconds(8000);
  options.foreman.worker_timeout = std::chrono::milliseconds(600);
  options.foreman.heartbeat_interval = std::chrono::milliseconds(150);

  SocketCluster cluster(data, model, rates, options);

  // Worker 4 goes through a proxy so its "kill" is an abrupt sever; with
  // reconnect off its mailbox closes and the role loop exits — the
  // in-process stand-in for the process dying.
  ChaosProxyOptions proxy_options;
  proxy_options.target_port = hub_port;
  ChaosProxy proxy(proxy_options);

  SocketRoleResult foreman_result;
  std::vector<std::thread> roles;
  for (const int rank : {1, 2, 3}) {
    roles.emplace_back([&, rank] {
      SocketRunOptions role_options = options;
      role_options.socket.rank = rank;
      if (rank == 1) {
        foreman_result = run_socket_role(data, model, rates, role_options);
      } else {
        EXPECT_NO_THROW(run_socket_role(data, model, rates, role_options));
      }
    });
  }
  std::thread victim([&] {
    SocketRunOptions role_options = options;
    role_options.socket.rank = 4;
    role_options.socket.port = proxy.port();
    try {
      run_socket_role(data, model, rates, role_options);
    } catch (const std::exception&) {
      // A sever mid-rendezvous can surface as a throw; either way the
      // "process" is gone, which is the point.
    }
  });

  ASSERT_TRUE(cluster.wait_ready(std::chrono::milliseconds(10000)));
  std::thread searcher([&] {
    EXPECT_NO_THROW({
      const SearchResult result =
          StepwiseSearch(data, search_options).run(cluster.runner());
      EXPECT_EQ(result.best_newick, reference.best_newick);
      EXPECT_EQ(result.best_log_likelihood, reference.best_log_likelihood);
    });
  });

  // Kill worker 4 mid-search, then restart it with the same rank.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  proxy.sever_all();
  victim.join();
  std::thread replacement([&] {
    SocketRunOptions role_options = options;
    role_options.socket.rank = 4;  // same rank, fresh connection to the hub
    try {
      run_socket_role(data, model, rates, role_options);
    } catch (const std::exception&) {
      // The search may finish (and the hub close) while the replacement is
      // mid-rendezvous; that race is benign.
    }
  });

  searcher.join();
  cluster.shutdown();
  for (auto& thread : roles) thread.join();
  replacement.join();
  proxy.close();

  ASSERT_TRUE(foreman_result.foreman.has_value());
  const ForemanStats& foreman = *foreman_result.foreman;
  EXPECT_GE(foreman.delinquencies, 1u);
  EXPECT_GE(foreman.probations, 1u);
  EXPECT_GE(foreman.probation_passes, 1u);
  EXPECT_GE(foreman.reinstatements, 1u);
}

}  // namespace
}  // namespace fdml
