// Tests for the discrete-event cluster simulator and the analytic workload
// synthesizer that together reproduce the paper's scaling study.
#include <gtest/gtest.h>

#include <cmath>

#include "model/simulate.hpp"
#include "search/search.hpp"
#include "simcluster/simulator.hpp"
#include "tree/random.hpp"
#include "simcluster/workload.hpp"

namespace fdml {
namespace {

SearchTrace uniform_trace(int rounds, int tasks_per_round, double cost,
                          double master = 0.0) {
  SearchTrace trace;
  trace.num_taxa = 10;
  for (int r = 0; r < rounds; ++r) {
    RoundTrace round;
    round.kind = RoundKind::kRearrange;
    round.taxa_in_tree = 10;
    round.master_seconds = master;
    for (int t = 0; t < tasks_per_round; ++t) {
      round.task_cpu_seconds.push_back(cost);
      round.task_bytes.push_back(400);
    }
    trace.rounds.push_back(std::move(round));
  }
  return trace;
}

TEST(Simulator, SerialReplayIsSumOfCosts) {
  const SearchTrace trace = uniform_trace(5, 8, 0.25, 0.1);
  SimClusterConfig config;
  config.processors = 1;
  const SimResult result = simulate_trace(trace, config);
  EXPECT_NEAR(result.wall_seconds, 5 * (8 * 0.25 + 0.1), 1e-12);
  EXPECT_NEAR(result.busy_seconds, 10.0, 1e-12);
  EXPECT_EQ(result.round_durations.size(), 5u);
  EXPECT_DOUBLE_EQ(result.mean_round_slack_seconds, 0.0);
}

TEST(Simulator, RejectsImpossibleLayouts) {
  const SearchTrace trace = uniform_trace(1, 4, 0.1);
  SimClusterConfig config;
  config.processors = 2;
  EXPECT_THROW(simulate_trace(trace, config), std::invalid_argument);
  config.processors = 3;
  EXPECT_THROW(simulate_trace(trace, config), std::invalid_argument);
}

TEST(Simulator, FourProcessorsSlowerThanSerial) {
  // The paper: "the overhead of communications and processing tasks causes
  // the parallel code running on four processors to be slower than the
  // serial code running on one processor" — both have exactly one worker.
  const SearchTrace trace = uniform_trace(20, 10, 0.05, 0.01);
  SimClusterConfig serial;
  serial.processors = 1;
  SimClusterConfig four;
  four.processors = 4;
  EXPECT_GT(simulate_trace(trace, four).wall_seconds,
            simulate_trace(trace, serial).wall_seconds);
  EXPECT_LT(simulated_speedup(trace, four), 1.0);
}

TEST(Simulator, WallTimeDecreasesWithProcessors) {
  const SearchTrace trace = uniform_trace(10, 64, 0.05, 0.005);
  SimClusterConfig config;
  double previous = 1e100;
  for (int p : {4, 8, 16, 32, 64}) {
    config.processors = p;
    const double wall = simulate_trace(trace, config).wall_seconds;
    EXPECT_LT(wall, previous) << p << " processors";
    previous = wall;
  }
}

TEST(Simulator, SpeedupBoundedByWorkerCount) {
  const SearchTrace trace = uniform_trace(10, 64, 0.05);
  for (int p : {4, 8, 16, 32}) {
    SimClusterConfig config;
    config.processors = p;
    const double speedup = simulated_speedup(trace, config);
    EXPECT_LE(speedup, static_cast<double>(config.workers()) + 1e-9);
    EXPECT_GT(speedup, 0.0);
    const SimResult result = simulate_trace(trace, config);
    EXPECT_LE(result.worker_utilization, 1.0 + 1e-9);
  }
}

TEST(Simulator, SpeedupSaturatesWhenWorkersExceedRoundWidth) {
  // The paper predicts falloff "at between 100 and 200 processors, since
  // the number of processors will equal or exceed the number of trees
  // analyzed in the taxon addition step". With rounds of 12 tasks, worker
  // counts beyond 12 cannot help.
  const SearchTrace trace = uniform_trace(30, 12, 0.05);
  SimClusterConfig narrow;
  narrow.processors = 12 + 3;  // workers == round width
  SimClusterConfig wide;
  wide.processors = 64;
  const double narrow_speedup = simulated_speedup(trace, narrow);
  const double wide_speedup = simulated_speedup(trace, wide);
  EXPECT_NEAR(wide_speedup, narrow_speedup, 0.05 * narrow_speedup);
}

TEST(Simulator, BarrierSlackGrowsWithCostDispersion) {
  // One wave of tasks per round (5 tasks on 5 workers), so slack reflects
  // cost dispersion rather than queueing depth.
  Rng rng(5);
  SearchTrace even = uniform_trace(20, 5, 0.05);
  SearchTrace uneven = uniform_trace(20, 5, 0.05);
  for (auto& round : uneven.rounds) {
    for (double& cost : round.task_cpu_seconds) {
      cost = rng.lognormal_mean_cv(0.05, 1.0);
    }
  }
  SimClusterConfig config;
  config.processors = 8;
  const SimResult even_result = simulate_trace(even, config);
  const SimResult uneven_result = simulate_trace(uneven, config);
  EXPECT_GT(uneven_result.mean_round_slack_seconds,
            2.0 * even_result.mean_round_slack_seconds);
}

TEST(Simulator, BusySecondsInvariantAcrossMachines) {
  const SearchTrace trace = uniform_trace(7, 9, 0.03);
  for (int p : {1, 4, 16}) {
    SimClusterConfig config;
    config.processors = p;
    EXPECT_NEAR(simulate_trace(trace, config).busy_seconds,
                trace.total_task_seconds(), 1e-12);
  }
}

TEST(Simulator, ReplaysRealSearchTrace) {
  Rng rng(31);
  Tree truth = random_yule_tree(9, rng);
  SimulateOptions sim_options;
  sim_options.num_sites = 150;
  const Alignment alignment =
      simulate_alignment(truth, default_taxon_names(9), SubstModel::jc69(),
                         RateModel::uniform(), sim_options, rng);
  const PatternAlignment data(alignment);
  SerialTaskRunner runner(data, SubstModel::jc69(), RateModel::uniform());
  SearchOptions search_options;
  search_options.seed = 3;
  const SearchResult search = StepwiseSearch(data, search_options).run(runner);

  // Modern-CPU tasks on this tiny problem run in ~0.1ms, so use link costs
  // proportionally small; the separate assertion below shows the
  // overhead-dominated regime.
  SimClusterConfig config;
  config.processors = 8;
  config.message_overhead_seconds = 2e-6;
  config.latency_seconds = 1e-6;
  const SimResult parallel = simulate_trace(search.trace, config);
  config.processors = 1;
  const SimResult serial = simulate_trace(search.trace, config);
  EXPECT_GT(parallel.wall_seconds, 0.0);
  EXPECT_LT(parallel.wall_seconds, serial.wall_seconds)
      << "5 workers with cheap messages must beat serial";
  EXPECT_GT(parallel.wall_seconds, serial.wall_seconds / 5.0)
      << "5 workers cannot exceed 5x";
  EXPECT_NEAR(serial.busy_seconds, search.trace.total_task_seconds(), 1e-12);

  // With per-message costs far above the task costs, parallelism loses —
  // the regime the paper avoids by keeping whole-tree optimizations as the
  // unit of work.
  SimClusterConfig expensive;
  expensive.processors = 8;
  expensive.message_overhead_seconds = 5e-3;
  EXPECT_GT(simulate_trace(search.trace, expensive).wall_seconds,
            serial.wall_seconds);
}

// --- workload synthesis ---

TEST(Workload, SynthesizedTraceHasAlgorithmStructure) {
  WorkloadModel model;
  Rng rng(9);
  const SearchTrace trace = synthesize_trace(20, 500, 1, model, rng);
  EXPECT_EQ(trace.num_taxa, 20);
  ASSERT_FALSE(trace.rounds.empty());
  EXPECT_EQ(trace.rounds.front().kind, RoundKind::kInitial);
  int expected_taxa = 4;
  for (const auto& round : trace.rounds) {
    if (round.kind != RoundKind::kInsertion) continue;
    EXPECT_EQ(static_cast<int>(round.task_cpu_seconds.size()),
              2 * expected_taxa - 5);
    ++expected_taxa;
  }
  EXPECT_EQ(expected_taxa, 21);
  for (const auto& round : trace.rounds) {
    if (round.kind != RoundKind::kRearrange) continue;
    EXPECT_LE(static_cast<int>(round.task_cpu_seconds.size()),
              2 * round.taxa_in_tree - 6);
  }
}

TEST(Workload, CostsScaleWithSites) {
  WorkloadModel model;
  model.cost_noise_cv = 0.0;
  model.rearrange_accept_probability = 0.0;
  Rng rng1(4);
  Rng rng2(4);
  const SearchTrace small = synthesize_trace(15, 200, 1, model, rng1);
  const SearchTrace large = synthesize_trace(15, 800, 1, model, rng2);
  EXPECT_NEAR(large.total_task_seconds() / small.total_task_seconds(), 4.0, 0.2);
}

TEST(Workload, LargerCrossGrowsRearrangementRounds) {
  WorkloadModel model;
  model.cost_noise_cv = 0.0;
  model.rearrange_accept_probability = 0.0;
  Rng rng1(4);
  Rng rng2(4);
  const SearchTrace k1 = synthesize_trace(25, 300, 1, model, rng1);
  const SearchTrace k5 = synthesize_trace(25, 300, 5, model, rng2);
  std::size_t widest_k1 = 0;
  std::size_t widest_k5 = 0;
  for (const auto& round : k1.rounds) {
    if (round.kind == RoundKind::kRearrange) {
      widest_k1 = std::max(widest_k1, round.task_cpu_seconds.size());
    }
  }
  for (const auto& round : k5.rounds) {
    if (round.kind == RoundKind::kRearrange) {
      widest_k5 = std::max(widest_k5, round.task_cpu_seconds.size());
    }
  }
  EXPECT_GT(widest_k5, 3 * widest_k1)
      << "crossing more vertices puts more work between barriers";
}

TEST(Workload, CalibrationProducesPositiveCoefficients) {
  Rng rng(17);
  Tree truth = random_yule_tree(8, rng);
  SimulateOptions options;
  options.num_sites = 120;
  const Alignment alignment =
      simulate_alignment(truth, default_taxon_names(8), SubstModel::jc69(),
                         RateModel::uniform(), options, rng);
  const PatternAlignment data(alignment);
  const WorkloadModel model =
      calibrate_workload(data, SubstModel::jc69(), RateModel::uniform(), 2);
  EXPECT_GT(model.full_cost_coefficient, 0.0);
  EXPECT_GT(model.quickadd_cost_coefficient, 0.0);
  EXPECT_LT(model.full_cost_coefficient, 1e-3) << "sanity: not absurdly slow";
}

TEST(Workload, SyntheticScalingReproducesPaperShape) {
  // End-to-end shape check on a 50-taxon synthetic workload at the paper's
  // k=5 setting. Task costs are scaled to Power3+-era speeds (a ~2001 CPU
  // is roughly 30x slower per core than this machine) so the task/message
  // cost ratio matches the paper's regime: 4 procs < serial; strong
  // scaling through 16..64.
  WorkloadModel model;
  Rng rng(23);
  SearchTrace trace = synthesize_trace(50, 1858, 5, model, rng);
  trace.scale_costs(30.0);
  SimClusterConfig config;
  config.processors = 4;
  EXPECT_LT(simulated_speedup(trace, config), 1.0);
  config.processors = 16;
  const double speedup16 = simulated_speedup(trace, config);
  config.processors = 64;
  const double speedup64 = simulated_speedup(trace, config);
  EXPECT_GT(speedup16, 6.0);
  EXPECT_GT(speedup64, 2.2 * speedup16)
      << "relative speedups from 16 to 64 processors are quite good";
}

}  // namespace
}  // namespace fdml
