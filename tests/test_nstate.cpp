// Tests for the generalized N-state subsystem: alphabets, models, the
// pruning engine (validated against brute-force enumeration), branch
// optimization, the gap-as-character-state treatment, and protein data.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "likelihood/engine.hpp"
#include "model/simulate.hpp"
#include "model/submodel.hpp"
#include "nstate/alphabet.hpp"
#include "nstate/data.hpp"
#include "nstate/engine.hpp"
#include "nstate/model.hpp"
#include "nstate/simulate.hpp"
#include "seq/alignment.hpp"
#include "tree/random.hpp"
#include "util/linalg.hpp"

namespace fdml {
namespace {

std::vector<std::string> names_for(int n) {
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) names.push_back("t" + std::to_string(i));
  return names;
}

// Quartet builder: grouped -> ((t0,t1),(t2,t3)); otherwise ((t0,t2),(t1,t3)).
Tree quartet(const std::vector<std::string>& names, bool grouped) {
  Tree tree(static_cast<int>(names.size()));
  tree.make_triplet(0, grouped ? 1 : 2, grouped ? 2 : 1, 0.05, 0.05, 0.05);
  const int other = grouped ? 2 : 1;
  tree.insert_tip(3, other, tree.neighbor(other, 0), 0.05);
  return tree;
}

// --- alphabets ---

TEST(NAlphabet, DnaMatchesCoreSemantics) {
  const StateAlphabet dna = StateAlphabet::dna();
  EXPECT_EQ(dna.num_states(), 4);
  EXPECT_EQ(dna.code('A'), 1u);
  EXPECT_EQ(dna.code('g'), 4u);
  EXPECT_EQ(dna.code('R'), 5u);
  EXPECT_EQ(dna.code('-'), dna.unknown_mask()) << "gap = missing in 4-state";
  EXPECT_EQ(dna.code('!'), 0u);
}

TEST(NAlphabet, GapStateIsARealState) {
  const StateAlphabet five = StateAlphabet::dna_with_gap();
  EXPECT_EQ(five.num_states(), 5);
  EXPECT_EQ(five.code('-'), 1u << 4) << "gap is its own state";
  EXPECT_EQ(five.code('N'), 0x0fu) << "N = any base but NOT a gap";
  EXPECT_EQ(five.code('?'), five.unknown_mask()) << "? could be anything";
}

TEST(NAlphabet, ProteinCodes) {
  const StateAlphabet protein = StateAlphabet::protein();
  EXPECT_EQ(protein.num_states(), 20);
  // Every canonical symbol round-trips to a pure state.
  for (int s = 0; s < 20; ++s) {
    EXPECT_EQ(protein.code(protein.symbol(s)), std::uint32_t{1} << s);
  }
  EXPECT_EQ(__builtin_popcount(protein.code('B')), 2) << "B = N or D";
  EXPECT_EQ(__builtin_popcount(protein.code('Z')), 2) << "Z = Q or E";
  EXPECT_EQ(protein.code('X'), protein.unknown_mask());
  EXPECT_EQ(protein.code('8'), 0u);
  const auto coded = protein.encode("ARNDX");
  EXPECT_EQ(protein.decode(coded), "ARNDX");
  EXPECT_THROW(protein.encode("AR#D"), std::invalid_argument);
}

// --- models ---

class NModelCase : public ::testing::TestWithParam<int> {
 protected:
  GeneralModel model() const {
    switch (GetParam()) {
      case 0: return GeneralModel::poisson(4);
      case 1: return GeneralModel::poisson(20);
      case 2:
        return GeneralModel::proportional({0.3, 0.2, 0.15, 0.25, 0.1});
      default:
        return GeneralModel::dna_with_gap({0.3, 0.2, 0.25, 0.25}, 1.5, 0.12, 0.4);
    }
  }
};

INSTANTIATE_TEST_SUITE_P(Models, NModelCase, ::testing::Range(0, 4));

TEST_P(NModelCase, StochasticAndReversible) {
  const GeneralModel m = model();
  const std::size_t n = static_cast<std::size_t>(m.num_states());
  std::vector<double> p;
  for (double t : {0.0, 0.05, 0.5, 3.0}) {
    m.transition(t, p);
    for (std::size_t i = 0; i < n; ++i) {
      double row = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_GE(p[i * n + j], 0.0);
        row += p[i * n + j];
      }
      EXPECT_NEAR(row, 1.0, 1e-9) << m.name() << " t=" << t;
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(m.frequencies()[i] * p[i * n + j],
                    m.frequencies()[j] * p[j * n + i], 1e-10)
            << m.name();
      }
    }
  }
  // Stationary at large t.
  m.transition(400.0, p);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(p[i * n + j], m.frequencies()[j], 1e-8) << m.name();
    }
  }
}

TEST_P(NModelCase, UnitMeanRateAndDerivatives) {
  const GeneralModel m = model();
  const std::size_t n = static_cast<std::size_t>(m.num_states());
  double mu = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mu -= m.frequencies()[i] * m.rate_matrix()[i * n + i];
  }
  EXPECT_NEAR(mu, 1.0, 1e-12);

  std::vector<double> p;
  std::vector<double> dp;
  std::vector<double> d2p;
  std::vector<double> plus;
  std::vector<double> minus;
  const double t = 0.21;
  const double h = 1e-5;
  m.transition_with_derivs(t, p, dp, d2p);
  m.transition(t + h, plus);
  m.transition(t - h, minus);
  for (std::size_t x = 0; x < n * n; ++x) {
    EXPECT_NEAR(dp[x], (plus[x] - minus[x]) / (2 * h), 1e-5);
    EXPECT_NEAR(d2p[x], (plus[x] - 2 * p[x] + minus[x]) / (h * h), 1e-3);
  }
}

TEST(NModel, FourStatePoissonMatchesJc69ClosedForm) {
  const GeneralModel m = GeneralModel::poisson(4);
  std::vector<double> p;
  for (double t : {0.1, 0.7}) {
    m.transition(t, p);
    const double e = std::exp(-4.0 * t / 3.0);
    EXPECT_NEAR(p[0], 0.25 + 0.75 * e, 1e-10);
    EXPECT_NEAR(p[1], 0.25 - 0.25 * e, 1e-10);
  }
}

TEST(NModel, RejectsBadInput) {
  EXPECT_THROW(GeneralModel::proportional({0.5, -0.5, 0.5, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(GeneralModel::reversible("x", {0.5, 0.5}, {1.0, 1.0}),
               std::invalid_argument)
      << "2 states need exactly 1 exchangeability";
  EXPECT_THROW(GeneralModel::dna_with_gap({0.25, 0.25, 0.25, 0.25}, 1.0, 1.5, 1.0),
               std::invalid_argument);
}

// --- data ---

TEST(NData, PatternsCompressAndCount) {
  StateAlignment alignment(StateAlphabet::protein());
  alignment.add_sequence("t0", "AARND");
  alignment.add_sequence("t1", "AARNC");
  alignment.add_sequence("t2", "AAKND");
  const StatePatterns patterns(alignment);
  EXPECT_EQ(patterns.num_taxa(), 3u);
  EXPECT_EQ(patterns.num_sites(), 5u);
  EXPECT_EQ(patterns.num_patterns(), 4u) << "columns 0 and 1 merge";
  EXPECT_DOUBLE_EQ(patterns.weight(patterns.pattern_of_site(0)), 2.0);
}

TEST(NData, GapFrequencyCounted) {
  StateAlignment alignment(StateAlphabet::dna_with_gap());
  alignment.add_sequence("t0", "AC-T");
  alignment.add_sequence("t1", "AC-T");
  const auto freq = alignment.state_frequencies();
  ASSERT_EQ(freq.size(), 5u);
  EXPECT_NEAR(freq[4], 0.25, 1e-5) << "2 gaps of 8 characters (tiny shift from\n"                                      "the epsilon floor on the absent G)";
}

TEST(NData, FastaReader) {
  std::istringstream in(">seq1 description\nARND\nCQEG\n>seq2\nARNDCQEG\n");
  const StateAlignment alignment =
      StateAlignment::from_fasta(in, StateAlphabet::protein());
  EXPECT_EQ(alignment.num_taxa(), 2u);
  EXPECT_EQ(alignment.num_sites(), 8u);
  EXPECT_EQ(alignment.name(0), "seq1");
}

// --- engine vs brute force ---

double nstate_brute_force(const Tree& tree, const StatePatterns& data,
                          const GeneralModel& model, const RateModel& rates) {
  const std::size_t n = static_cast<std::size_t>(model.num_states());
  std::vector<int> nodes;
  for (int node = 0; node < tree.max_nodes(); ++node) {
    if (tree.contains(node)) nodes.push_back(node);
  }
  const int root = tree.any_internal();
  // Parent->child directed edges away from the root.
  std::vector<std::pair<int, int>> edges;
  std::vector<std::pair<int, int>> stack{{root, -1}};
  while (!stack.empty()) {
    const auto [node, from] = stack.back();
    stack.pop_back();
    for (int s = 0; s < 3; ++s) {
      const int nbr = tree.neighbor(node, s);
      if (nbr == Tree::kNoNode || nbr == from) continue;
      edges.emplace_back(node, nbr);
      stack.push_back({nbr, node});
    }
  }
  double total = 0.0;
  for (std::size_t pat = 0; pat < data.num_patterns(); ++pat) {
    double site = 0.0;
    for (std::size_t c = 0; c < rates.num_categories(); ++c) {
      std::vector<std::vector<double>> p(edges.size());
      for (std::size_t e = 0; e < edges.size(); ++e) {
        model.transition(tree.length(edges[e].first, edges[e].second) *
                             rates.rate(c),
                         p[e]);
      }
      std::vector<int> state(nodes.size(), 0);
      double cat_sum = 0.0;
      for (;;) {
        bool ok = true;
        for (std::size_t k = 0; k < nodes.size() && ok; ++k) {
          if (tree.is_tip(nodes[k])) {
            const std::uint32_t mask =
                data.at(static_cast<std::size_t>(nodes[k]), pat);
            if (!(mask & (std::uint32_t{1} << state[k]))) ok = false;
          }
        }
        if (ok) {
          auto state_of = [&](int node) {
            for (std::size_t k = 0; k < nodes.size(); ++k) {
              if (nodes[k] == node) return state[k];
            }
            return -1;
          };
          double term =
              model.frequencies()[static_cast<std::size_t>(state_of(root))];
          for (std::size_t e = 0; e < edges.size(); ++e) {
            term *= p[e][static_cast<std::size_t>(state_of(edges[e].first)) * n +
                         static_cast<std::size_t>(state_of(edges[e].second))];
          }
          cat_sum += term;
        }
        std::size_t k = 0;
        while (k < nodes.size()) {
          if (++state[k] < static_cast<int>(n)) break;
          state[k] = 0;
          ++k;
        }
        if (k == nodes.size()) break;
      }
      site += rates.probability(c) * cat_sum;
    }
    total += data.weight(pat) * std::log(site);
  }
  return total;
}

TEST(NEngine, GapModelMatchesBruteForce) {
  StateAlignment alignment(StateAlphabet::dna_with_gap());
  alignment.add_sequence("t0", "AC-TA?");
  alignment.add_sequence("t1", "ACGT-N");
  alignment.add_sequence("t2", "AC-TAR");
  alignment.add_sequence("t3", "GC--AA");
  const StatePatterns data(alignment);
  const GeneralModel model =
      GeneralModel::dna_with_gap({0.3, 0.2, 0.25, 0.25}, 1.2, 0.15, 0.5);
  const RateModel rates = RateModel::discrete_gamma(0.8, 2);
  Rng rng(3);
  for (int trial = 0; trial < 3; ++trial) {
    const Tree tree = random_tree(4, rng);
    GeneralEngine engine(data, model, rates);
    engine.attach(tree);
    EXPECT_NEAR(engine.log_likelihood(),
                nstate_brute_force(tree, data, model, rates), 1e-8)
        << "trial " << trial;
  }
}

TEST(NEngine, FourStateEngineAgreesWithCoreEngine) {
  // The dna() N-state alphabet reproduces the core 4-state semantics, so
  // both engines must compute identical likelihoods under JC.
  const char* rows[] = {"ACGTACGTNN", "ACTTAC-TAA", "AGGTACGTCA", "ACGAACGTCC"};
  Alignment core_alignment;
  StateAlignment nstate_alignment(StateAlphabet::dna());
  for (int t = 0; t < 4; ++t) {
    core_alignment.add_sequence("t" + std::to_string(t), string_to_codes(rows[t]));
    nstate_alignment.add_sequence("t" + std::to_string(t), rows[t]);
  }
  const PatternAlignment core_data(core_alignment);
  const StatePatterns nstate_data(nstate_alignment);
  Rng rng(7);
  const Tree tree = random_tree(4, rng);

  LikelihoodEngine core(core_data, SubstModel::jc69(), RateModel::uniform());
  core.attach(tree);
  GeneralEngine general(nstate_data, GeneralModel::poisson(4), RateModel::uniform());
  general.attach(tree);
  EXPECT_NEAR(core.log_likelihood(), general.log_likelihood(), 1e-9);
}

TEST(NEngine, EdgeDerivativesMatchFiniteDifferences) {
  StateAlignment alignment(StateAlphabet::protein());
  alignment.add_sequence("t0", "ARNDCQEGHI");
  alignment.add_sequence("t1", "ARNDCQEGHL");
  alignment.add_sequence("t2", "ARNECREGHI");
  alignment.add_sequence("t3", "AKNDCQEGWI");
  const StatePatterns data(alignment);
  GeneralEngine engine(data, GeneralModel::poisson(20), RateModel::uniform());
  Rng rng(5);
  const Tree tree = random_tree(4, rng);
  engine.attach(tree);
  const auto [u, v] = tree.edges()[1];
  const GeneralEdgeLikelihood f = engine.edge_likelihood(u, v);
  for (double t : {0.05, 0.4}) {
    double d1 = 0.0;
    double d2 = 0.0;
    const double lnl = f.evaluate(t, &d1, &d2);
    const double h = 1e-5;
    const double plus = f.evaluate(t + h);
    const double minus = f.evaluate(t - h);
    EXPECT_NEAR(d1, (plus - minus) / (2 * h), 1e-4 * (1 + std::fabs(d1)));
    EXPECT_NEAR(d2, (plus - 2 * lnl + minus) / (h * h),
                1e-3 * (1 + std::fabs(d2)));
  }
}

TEST(NEngine, SmoothingImprovesProteinLikelihood) {
  Rng rng(11);
  const Tree truth = random_yule_tree(8, rng);
  const StateAlphabet protein = StateAlphabet::protein();
  const GeneralModel model = GeneralModel::poisson(20);
  StateAlignment alignment = simulate_states(
      truth, default_taxon_names(8), protein, model, RateModel::uniform(), 200, rng);
  const StatePatterns data(alignment);

  Tree tree = truth;
  for (const auto& [u, v] : tree.edges()) tree.set_length(u, v, 0.5);
  GeneralEngine engine(data, model, RateModel::uniform());
  engine.attach(tree);
  const double before = engine.log_likelihood();
  const double after = engine.smooth(tree, 4);
  EXPECT_GT(after, before);
  // Recovered lengths approximate the truth.
  for (const auto& [u, v] : truth.edges()) {
    EXPECT_NEAR(tree.length(u, v), truth.length(u, v),
                0.08 + 0.5 * truth.length(u, v));
  }
}

TEST(NEngine, GapStateExtractsSignalMissingTreatmentDiscards) {
  // Two clades distinguished *only* by an indel block: the 5-state model
  // must prefer the true grouping; the missing-data treatment is blind to
  // it. This is the paper's motivation for gaps-as-a-character-state.
  const int taxa = 4;
  const auto names = names_for(taxa);
  auto build = [&](const char* a, const char* b, const char* c, const char* d) {
    StateAlignment alignment(StateAlphabet::dna_with_gap());
    alignment.add_sequence(names[0], a);
    alignment.add_sequence(names[1], b);
    alignment.add_sequence(names[2], c);
    alignment.add_sequence(names[3], d);
    return alignment;
  };
  // t0,t1 share a deletion; t2,t3 do not. Bases are identical everywhere.
  const StateAlignment alignment = build(
      "ACGT----ACGTACGT", "ACGT----ACGTACGT", "ACGTACGTACGTACGT",
      "ACGTACGTACGTACGT");
  const StatePatterns data(alignment);
  const GeneralModel model =
      GeneralModel::dna_with_gap({0.25, 0.25, 0.25, 0.25}, 1.0, 0.15, 0.5);

  GeneralEngine engine(data, model, RateModel::uniform());
  Tree grouped = quartet(names, true);
  const double lnl_grouped = engine.smooth(grouped, 4);
  Tree split = quartet(names, false);
  const double lnl_split = engine.smooth(split, 4);
  EXPECT_GT(lnl_grouped, lnl_split)
      << "shared indels are phylogenetic signal under the 5-state model";

  // Under the 4-state (gap = missing) treatment the two topologies are
  // indistinguishable: the alignments' bases are identical.
  Alignment missing;
  missing.add_sequence(names[0], string_to_codes("ACGT----ACGTACGT"));
  missing.add_sequence(names[1], string_to_codes("ACGT----ACGTACGT"));
  missing.add_sequence(names[2], string_to_codes("ACGTACGTACGTACGT"));
  missing.add_sequence(names[3], string_to_codes("ACGTACGTACGTACGT"));
  const PatternAlignment core_data(missing);
  LikelihoodEngine core(core_data, SubstModel::jc69(), RateModel::uniform());
  Tree g4 = quartet(names, true);
  core.attach(g4);
  const double core_grouped = core.log_likelihood();
  Tree s4 = quartet(names, false);
  core.attach(s4);
  const double core_split = core.log_likelihood();
  EXPECT_NEAR(core_grouped, core_split, 0.3)
      << "gap-as-missing sees (almost) no difference";
}

}  // namespace
}  // namespace fdml
