// Tests for the likelihood engine, branch optimizer and site-rate
// estimator. The engine is validated against a brute-force likelihood that
// enumerates every internal-state assignment.
#include <gtest/gtest.h>

#include <cmath>

#include "likelihood/engine.hpp"
#include "likelihood/evaluator.hpp"
#include "likelihood/optimize.hpp"
#include "likelihood/transition_cache.hpp"
#include "likelihood/site_rates.hpp"
#include "model/simulate.hpp"
#include "tree/newick.hpp"
#include "tree/random.hpp"
#include "tree/splits.hpp"
#include "util/rng.hpp"

namespace fdml {
namespace {

// Brute force: sum over all state assignments to every node (tips restricted
// to states compatible with their codes), with rate-category mixing.
double brute_force_log_likelihood(const Tree& tree, const PatternAlignment& data,
                                  const SubstModel& model, const RateModel& rates) {
  std::vector<int> nodes;
  for (int n = 0; n < tree.max_nodes(); ++n) {
    if (tree.contains(n)) nodes.push_back(n);
  }
  const Vec4& pi = model.frequencies();
  const int root = tree.any_internal();

  // Orient every edge parent -> child away from the root: P_ij is the
  // probability of child state j given parent state i, which matters for
  // models with unequal frequencies.
  std::vector<std::pair<int, int>> edges;
  {
    std::vector<std::pair<int, int>> stack{{root, -1}};
    while (!stack.empty()) {
      const auto [node, from] = stack.back();
      stack.pop_back();
      for (int s = 0; s < 3; ++s) {
        const int nbr = tree.neighbor(node, s);
        if (nbr == Tree::kNoNode || nbr == from) continue;
        edges.emplace_back(node, nbr);
        stack.push_back({nbr, node});
      }
    }
  }

  double total = 0.0;
  for (std::size_t pat = 0; pat < data.num_patterns(); ++pat) {
    double site_likelihood = 0.0;
    for (std::size_t cat = 0; cat < rates.num_categories(); ++cat) {
      std::vector<Mat4> p(edges.size());
      for (std::size_t e = 0; e < edges.size(); ++e) {
        model.transition(tree.length(edges[e].first, edges[e].second) *
                             rates.rate(cat),
                         p[e]);
      }
      // Enumerate assignments via odometer over nodes.
      std::vector<int> state(nodes.size(), 0);
      double cat_sum = 0.0;
      for (;;) {
        // Compatibility with tip data.
        bool ok = true;
        for (std::size_t k = 0; k < nodes.size() && ok; ++k) {
          if (tree.is_tip(nodes[k])) {
            const BaseCode code = data.at(static_cast<std::size_t>(nodes[k]), pat);
            if (!(code & base_from_index(state[k]))) ok = false;
          }
        }
        if (ok) {
          auto state_of = [&](int node) {
            for (std::size_t k = 0; k < nodes.size(); ++k) {
              if (nodes[k] == node) return state[k];
            }
            return -1;
          };
          double term = pi[static_cast<std::size_t>(state_of(root))];
          for (std::size_t e = 0; e < edges.size(); ++e) {
            term *= p[e][state_of(edges[e].first)][state_of(edges[e].second)];
          }
          cat_sum += term;
        }
        // Advance odometer.
        std::size_t k = 0;
        while (k < nodes.size()) {
          if (++state[k] < 4) break;
          state[k] = 0;
          ++k;
        }
        if (k == nodes.size()) break;
      }
      site_likelihood += rates.probability(cat) * cat_sum;
    }
    total += data.weight(pat) * std::log(site_likelihood);
  }
  return total;
}

Alignment small_alignment() {
  Alignment alignment;
  alignment.add_sequence("t0", string_to_codes("ACGTACGTAANCGTRA"));
  alignment.add_sequence("t1", string_to_codes("ACGTACTTAA-CGTGA"));
  alignment.add_sequence("t2", string_to_codes("ACGAACGTCAACTTAA"));
  alignment.add_sequence("t3", string_to_codes("AGGTACGTCATCGTAY"));
  alignment.add_sequence("t4", string_to_codes("ACCTACGTTAACGAAA"));
  return alignment;
}

struct EngineCase {
  const char* name;
  SubstModel model;
  RateModel rates;
};

std::vector<EngineCase> engine_cases() {
  const Vec4 pi{0.3, 0.2, 0.15, 0.35};
  std::vector<EngineCase> cases;
  cases.push_back({"jc_uniform", SubstModel::jc69(), RateModel::uniform()});
  cases.push_back({"f84_uniform", SubstModel::f84(pi, 1.2), RateModel::uniform()});
  cases.push_back({"gtr_gamma", SubstModel::gtr(pi, {1.2, 3.0, 0.7, 1.1, 4.2, 1.0}),
                   RateModel::discrete_gamma(0.5, 3)});
  cases.push_back({"hky_gammaI", SubstModel::hky85(pi, 3.0),
                   RateModel::gamma_invariant(0.8, 2, 0.15)});
  return cases;
}

class EngineVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(EngineVsBruteForce, MatchesEnumeration) {
  const EngineCase c = engine_cases()[static_cast<std::size_t>(GetParam())];
  const Alignment alignment = small_alignment();
  const PatternAlignment data(alignment);
  Rng rng(900 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 3; ++trial) {
    const Tree tree = random_tree(5, rng);
    LikelihoodEngine engine(data, c.model, c.rates);
    engine.attach(tree);
    const double fast = engine.log_likelihood();
    const double slow = brute_force_log_likelihood(tree, data, c.model, c.rates);
    EXPECT_NEAR(fast, slow, 1e-8) << c.name << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, EngineVsBruteForce, ::testing::Range(0, 4));

TEST(Engine, SameLikelihoodAcrossEveryEdge) {
  const PatternAlignment data(small_alignment());
  Rng rng(7);
  const Tree tree = random_tree(5, rng);
  LikelihoodEngine engine(data, SubstModel::jc69(), RateModel::uniform());
  engine.attach(tree);
  const double reference = engine.log_likelihood();
  for (const auto& [u, v] : tree.edges()) {
    EXPECT_NEAR(engine.log_likelihood_edge(u, v), reference, 1e-9)
        << "edge " << u << "-" << v;
  }
}

TEST(Engine, PatternCompressionPreservesLikelihood) {
  // Duplicate columns must contribute exactly via weights: compare the
  // compressed alignment against an explicitly repeated one.
  Alignment base;
  base.add_sequence("t0", string_to_codes("ACGTA"));
  base.add_sequence("t1", string_to_codes("ACGTC"));
  base.add_sequence("t2", string_to_codes("AGGTA"));
  base.add_sequence("t3", string_to_codes("ACTTA"));
  Alignment repeated;
  for (std::size_t t = 0; t < base.num_taxa(); ++t) {
    auto row = base.row(t);
    auto doubled = row + row + row;
    repeated.add_sequence(base.name(t), doubled);
  }
  Rng rng(11);
  const Tree tree = random_tree(4, rng);
  const PatternAlignment d1(base);
  const PatternAlignment d3(repeated);
  LikelihoodEngine e1(d1, SubstModel::jc69(), RateModel::uniform());
  LikelihoodEngine e3(d3, SubstModel::jc69(), RateModel::uniform());
  e1.attach(tree);
  e3.attach(tree);
  EXPECT_NEAR(3.0 * e1.log_likelihood(), e3.log_likelihood(), 1e-8);
  EXPECT_LT(d3.num_patterns(), repeated.num_sites());
}

TEST(Engine, SiteLogLikelihoodsSumToTotal) {
  const PatternAlignment data(small_alignment());
  Rng rng(13);
  const Tree tree = random_tree(5, rng);
  LikelihoodEngine engine(data, SubstModel::f84({0.3, 0.2, 0.2, 0.3}, 1.0),
                          RateModel::discrete_gamma(1.0, 2));
  engine.attach(tree);
  const auto site_lnls = engine.site_log_likelihoods();
  double sum = 0.0;
  for (double s : site_lnls) sum += s;
  EXPECT_NEAR(sum, engine.log_likelihood(), 1e-8);
}

TEST(Engine, ScalingKeepsDeepTreesFinite) {
  // A 120-taxon caterpillar with substantial branch lengths drives raw
  // conditional likelihoods far below 2^-256; the per-pattern scaling (the
  // paper's normalization change) must keep lnL finite and consistent with
  // per-site values.
  const int n = 120;
  Tree tree(n);
  tree.make_triplet(0, 1, 2, 0.4, 0.4, 0.4);
  for (int tip = 3; tip < n; ++tip) {
    tree.insert_tip(tip, tip - 1, tree.neighbor(tip - 1, 0), 0.4);
  }
  Rng rng(17);
  SimulateOptions options;
  options.num_sites = 40;
  const Alignment alignment =
      simulate_alignment(tree, default_taxon_names(n), SubstModel::jc69(),
                         RateModel::uniform(), options, rng);
  const PatternAlignment data(alignment);
  LikelihoodEngine engine(data, SubstModel::jc69(), RateModel::uniform());
  engine.attach(tree);
  const double lnl = engine.log_likelihood();
  EXPECT_TRUE(std::isfinite(lnl));
  EXPECT_LT(lnl, 0.0);
  const auto site_lnls = engine.site_log_likelihoods();
  double sum = 0.0;
  for (double s : site_lnls) {
    EXPECT_TRUE(std::isfinite(s));
    sum += s;
  }
  EXPECT_NEAR(sum, lnl, 1e-6);
}

TEST(Engine, EdgeLikelihoodDerivativesMatchFiniteDifferences) {
  const PatternAlignment data(small_alignment());
  Rng rng(19);
  const Tree tree = random_tree(5, rng);
  LikelihoodEngine engine(data, SubstModel::hky85({0.3, 0.2, 0.2, 0.3}, 2.5),
                          RateModel::discrete_gamma(0.7, 3));
  engine.attach(tree);
  const auto [u, v] = tree.edges()[2];
  const EdgeLikelihood f = engine.edge_likelihood(u, v);
  for (double t : {0.05, 0.2, 0.8}) {
    double d1 = 0.0;
    double d2 = 0.0;
    const double lnl = f.evaluate(t, &d1, &d2);
    // h balances truncation against the ~|lnl| * eps / h^2 cancellation
    // noise in the second difference.
    const double h = 1e-5;
    const double plus = f.evaluate(t + h);
    const double minus = f.evaluate(t - h);
    EXPECT_NEAR(d1, (plus - minus) / (2 * h), 1e-4 * (1.0 + std::fabs(d1)));
    EXPECT_NEAR(d2, (plus - 2 * lnl + minus) / (h * h),
                1e-3 * (1.0 + std::fabs(d2)));
  }
}

TEST(Engine, CachedAndFreshEvaluationsAgreeAfterEdits) {
  // Interleave length edits with likelihood queries; the lazily-invalidated
  // cache must always agree with a from-scratch engine.
  const PatternAlignment data(small_alignment());
  Rng rng(23);
  Tree tree = random_tree(5, rng);
  LikelihoodEngine cached(data, SubstModel::jc69(), RateModel::uniform());
  cached.attach(tree);
  (void)cached.log_likelihood();
  const auto edges = tree.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    tree.set_length(u, v, 0.05 + 0.1 * static_cast<double>(e));
    cached.on_length_changed(u, v);
    const double incremental = cached.log_likelihood();
    LikelihoodEngine fresh(data, SubstModel::jc69(), RateModel::uniform());
    fresh.attach(tree);
    EXPECT_NEAR(incremental, fresh.log_likelihood(), 1e-9) << "edit " << e;
  }
}

TEST(Engine, NewtonIterationsReuseCachedClvs) {
  const PatternAlignment data(small_alignment());
  Rng rng(29);
  const Tree tree = random_tree(5, rng);
  LikelihoodEngine engine(data, SubstModel::jc69(), RateModel::uniform());
  engine.attach(tree);
  const auto [u, v] = tree.edges()[0];
  const EdgeLikelihood f = engine.edge_likelihood(u, v);
  const auto before = engine.clv_computations();
  for (double t = 0.01; t < 0.5; t += 0.01) f.evaluate(t);
  EXPECT_EQ(engine.clv_computations(), before)
      << "evaluating along one edge must not touch CLVs";
}

// --- transition cache & kernel counters ---

TEST(TransitionCache, ServesBitIdenticalMatricesAndCountsHits) {
  const SubstModel model = SubstModel::hky85({0.3, 0.2, 0.2, 0.3}, 2.5);
  TransitionCache cache(64);
  Mat4 direct{};
  Mat4 cached{};
  for (double t : {0.01, 0.15, 0.7}) {
    model.transition(t, direct);
    cache.transition(model, t, cached);  // miss: builds the entry
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_EQ(direct[i][j], cached[i][j]) << "t=" << t;
      }
    }
    cache.transition(model, t, cached);  // hit: served from the slot
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_EQ(direct[i][j], cached[i][j]) << "t=" << t << " (cached)";
      }
    }
  }
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);

  // Epoch bump: every entry becomes stale without touching the slots.
  cache.invalidate();
  cache.transition(model, 0.15, cached);
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST(TransitionCache, TwoWaySetSurvivesAlternatingCollisions) {
  // Regression for the direct-mapped predecessor: two hot lengths hashing
  // to the same slot thrashed it — every alternation was a miss plus a full
  // exp(Qt) rebuild. The 2-way set keeps both resident; only a *third*
  // collider evicts (LRU within the set).
  const SubstModel model = SubstModel::jc69();
  TransitionCache cache(4);  // 2 sets x 2 ways: collisions are easy to craft
  std::vector<double> colliding{0.01};
  const std::size_t target = cache.set_index(colliding.front());
  for (double t = 0.011; colliding.size() < 3; t += 0.001) {
    if (cache.set_index(t) == target) colliding.push_back(t);
  }

  Mat4 p{};
  cache.transition(model, colliding[0], p);
  cache.transition(model, colliding[1], p);
  EXPECT_EQ(cache.misses(), 2u);
  for (int round = 0; round < 10; ++round) {
    cache.transition(model, colliding[0], p);
    cache.transition(model, colliding[1], p);
  }
  EXPECT_EQ(cache.hits(), 20u);       // direct-mapped: 0 hits, 20 misses
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Third collider: genuine conflict, evicts the LRU way (colliding[0],
  // touched before colliding[1] in the last round).
  cache.transition(model, colliding[2], p);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  cache.transition(model, colliding[1], p);  // survivor: still resident
  EXPECT_EQ(cache.hits(), 21u);
  cache.transition(model, colliding[0], p);  // victim: gone
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.evictions(), 2u);

  // Values stay bit-identical to the uncached path under all this churn.
  Mat4 direct{};
  model.transition(colliding[0], direct);
  cache.transition(model, colliding[0], p);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_EQ(direct[i][j], p[i][j]);
  }

  // Epoch invalidation makes ways stale; refilling them is not an eviction.
  cache.invalidate();
  const std::uint64_t evictions_before = cache.evictions();
  cache.transition(model, colliding[0], p);
  cache.transition(model, colliding[1], p);
  EXPECT_EQ(cache.evictions(), evictions_before);
}

TEST(Engine, SiteLogLikelihoodOverloadMatchesReturningVersion) {
  const PatternAlignment data(small_alignment());
  Rng rng(83);
  const Tree tree = random_tree(5, rng);
  LikelihoodEngine engine(data, SubstModel::hky85({0.3, 0.2, 0.2, 0.3}, 2.5),
                          RateModel::discrete_gamma(0.8, 3));
  engine.attach(tree);

  const std::vector<double> returned = engine.site_log_likelihoods();
  std::vector<double> out(3, 99.0);  // wrong size + stale content on purpose
  engine.site_log_likelihoods(out);
  ASSERT_EQ(out.size(), returned.size());
  for (std::size_t s = 0; s < out.size(); ++s) {
    EXPECT_EQ(out[s], returned[s]) << "site " << s;
  }

  // Reusing the same buffer (the bootstrap pattern) reproduces the values.
  engine.site_log_likelihoods(out);
  double sum = 0.0;
  for (std::size_t s = 0; s < out.size(); ++s) {
    EXPECT_EQ(out[s], returned[s]) << "site " << s << " (reused buffer)";
    sum += out[s];
  }
  EXPECT_NEAR(sum, engine.log_likelihood(), 1e-8);
}

TEST(Engine, SetModelInvalidatesTransitionCacheAndClvs) {
  const PatternAlignment data(small_alignment());
  Rng rng(71);
  const Tree tree = random_tree(5, rng);
  LikelihoodEngine engine(data, SubstModel::jc69(), RateModel::uniform());
  engine.attach(tree);
  const double jc = engine.log_likelihood();

  const SubstModel hky = SubstModel::hky85({0.3, 0.2, 0.2, 0.3}, 2.5);
  engine.set_model(hky);
  const double switched = engine.log_likelihood();
  EXPECT_NE(switched, jc);

  // Must match an engine built with the new model from scratch: stale cached
  // P(t) entries or CLVs would show up here.
  LikelihoodEngine fresh(data, hky, RateModel::uniform());
  fresh.attach(tree);
  EXPECT_NEAR(switched, fresh.log_likelihood(), 1e-9);
  EXPECT_GE(engine.transition_cache().invalidations(), 1u);

  // And switching back reproduces the original value exactly.
  engine.set_model(SubstModel::jc69());
  EXPECT_NEAR(engine.log_likelihood(), jc, 1e-12);
}

TEST(Engine, KernelCountersTrackHotPath) {
  const PatternAlignment data(small_alignment());
  Rng rng(73);
  const Tree tree = random_tree(5, rng);
  LikelihoodEngine engine(data, SubstModel::jc69(), RateModel::uniform());
  engine.attach(tree);

  const auto [u, v] = tree.edges()[0];
  const EdgeLikelihood f = engine.edge_likelihood(u, v);
  for (double t = 0.01; t < 0.2; t += 0.01) f.evaluate(t);

  const KernelCounters counters = engine.counters();
  EXPECT_GT(counters.clv_computations, 0u);
  EXPECT_EQ(counters.edge_captures, 1u);
  EXPECT_GE(counters.edge_evaluations, 19u);
  EXPECT_GT(counters.transition_misses, 0u);
  EXPECT_GT(counters.scratch_bytes_reused, 0u);
  EXPECT_GE(counters.transition_hit_rate(), 0.0);
  EXPECT_LE(counters.transition_hit_rate(), 1.0);

  // Re-evaluating the same branch lengths is served from the cache.
  const std::uint64_t misses_before = engine.counters().transition_misses;
  for (double t = 0.01; t < 0.2; t += 0.01) f.evaluate(t);
  EXPECT_EQ(engine.counters().transition_misses, misses_before);
  EXPECT_GT(engine.counters().transition_hits, 0u);
}

// --- optimizer ---

TEST(Optimizer, FindsStationaryPointOfEachEdge) {
  const PatternAlignment data(small_alignment());
  Rng rng(31);
  Tree tree = random_tree(5, rng);
  LikelihoodEngine engine(data, SubstModel::jc69(), RateModel::uniform());
  engine.attach(tree);
  BranchOptimizer optimizer(engine);
  for (const auto& [u, v] : tree.edges()) {
    const double t = optimizer.optimize_edge(tree, u, v);
    const EdgeLikelihood f = engine.edge_likelihood(u, v);
    double d1 = 0.0;
    f.evaluate(t, &d1);
    // At an interior optimum the gradient is ~0; at the clamp boundaries it
    // may point outward.
    if (t > 2 * kMinBranchLength && t < 0.9 * kMaxBranchLength) {
      EXPECT_NEAR(d1, 0.0, 1e-3) << "edge " << u << "-" << v;
    }
  }
}

TEST(Optimizer, SmoothingNeverDecreasesLikelihood) {
  Rng rng(37);
  Tree truth = random_yule_tree(8, rng);
  SimulateOptions options;
  options.num_sites = 400;
  const Alignment alignment =
      simulate_alignment(truth, default_taxon_names(8), SubstModel::jc69(),
                         RateModel::uniform(), options, rng);
  const PatternAlignment data(alignment);

  Tree tree = truth;
  // Perturb all branch lengths badly.
  for (const auto& [u, v] : tree.edges()) tree.set_length(u, v, 0.5);
  LikelihoodEngine engine(data, SubstModel::jc69(), RateModel::uniform());
  engine.attach(tree);
  BranchOptimizer optimizer(engine);
  double previous = engine.log_likelihood();
  for (int pass = 0; pass < 4; ++pass) {
    for (const auto& [u, v] : tree.edges()) optimizer.optimize_edge(tree, u, v);
    const double current = engine.log_likelihood();
    EXPECT_GE(current, previous - 1e-7) << "pass " << pass;
    previous = current;
  }
}

TEST(Optimizer, RecoversSimulatedBranchLengths) {
  Rng rng(41);
  Tree truth(6);
  truth.make_triplet(0, 1, 2, 0.12, 0.07, 0.2);
  truth.insert_tip(3, 0, truth.neighbor(0, 0), 0.15);
  truth.insert_tip(4, 1, truth.neighbor(1, 0), 0.09);
  truth.insert_tip(5, 2, truth.neighbor(2, 0), 0.11);
  SimulateOptions options;
  options.num_sites = 20000;
  const Alignment alignment =
      simulate_alignment(truth, default_taxon_names(6), SubstModel::jc69(),
                         RateModel::uniform(), options, rng);
  const PatternAlignment data(alignment);

  Tree tree = truth;
  for (const auto& [u, v] : tree.edges()) tree.set_length(u, v, 0.3);
  TreeEvaluator evaluator(data, SubstModel::jc69(), RateModel::uniform());
  evaluator.evaluate(tree);
  for (const auto& [u, v] : truth.edges()) {
    EXPECT_NEAR(tree.length(u, v), truth.length(u, v),
                0.03 + 0.15 * truth.length(u, v))
        << "edge " << u << "-" << v;
  }
}

TEST(Optimizer, TrueTopologyBeatsRandomTopology) {
  Rng rng(43);
  Tree truth = random_yule_tree(10, rng);
  SimulateOptions options;
  options.num_sites = 800;
  const Alignment alignment =
      simulate_alignment(truth, default_taxon_names(10), SubstModel::jc69(),
                         RateModel::uniform(), options, rng);
  const PatternAlignment data(alignment);
  TreeEvaluator evaluator(data, SubstModel::jc69(), RateModel::uniform());

  Tree true_copy = truth;
  const double lnl_truth = evaluator.evaluate(true_copy).log_likelihood;
  int wins = 0;
  for (int trial = 0; trial < 5; ++trial) {
    Tree random_topology = random_tree(10, rng);
    if (robinson_foulds(random_topology, truth) == 0) continue;
    const double lnl_random = evaluator.evaluate(random_topology).log_likelihood;
    if (lnl_truth > lnl_random) ++wins;
  }
  EXPECT_GE(wins, 4);
}

TEST(Optimizer, PartialSmoothingTouchesOnlyListedEdges) {
  const PatternAlignment data(small_alignment());
  Rng rng(47);
  Tree tree = random_tree(5, rng);
  LikelihoodEngine engine(data, SubstModel::jc69(), RateModel::uniform());
  engine.attach(tree);
  BranchOptimizer optimizer(engine);
  const auto edges = tree.edges();
  const std::vector<std::pair<int, int>> subset{edges[0], edges[1]};
  std::vector<double> before;
  for (const auto& [u, v] : edges) before.push_back(tree.length(u, v));
  optimizer.smooth_edges(tree, subset, 2);
  for (std::size_t e = 2; e < edges.size(); ++e) {
    EXPECT_DOUBLE_EQ(tree.length(edges[e].first, edges[e].second), before[e]);
  }
}

// --- site rates ---

TEST(SiteRates, PatternFunctionMatchesEngineAtRateOne) {
  const PatternAlignment data(small_alignment());
  Rng rng(53);
  const Tree tree = random_tree(5, rng);
  LikelihoodEngine engine(data, SubstModel::jc69(), RateModel::uniform());
  engine.attach(tree);
  const auto site_lnls = engine.site_log_likelihoods();
  for (std::size_t site = 0; site < data.num_sites(); ++site) {
    const double direct = pattern_log_likelihood_at_rate(
        tree, data, SubstModel::jc69(), data.pattern_of_site(site), 1.0);
    EXPECT_NEAR(direct, site_lnls[site], 1e-9) << "site " << site;
  }
}

TEST(SiteRates, SeparatesFastAndSlowSites) {
  // Simulate slow sites (all branches x0.25) and fast sites (x4) on the
  // same topology, then estimate rates against the unscaled tree.
  Rng rng(59);
  Tree tree = random_yule_tree(12, rng);
  const auto names = default_taxon_names(12);
  SimulateOptions options;
  options.num_sites = 120;

  auto scaled = [&](double factor) {
    Tree t = tree;
    for (const auto& [u, v] : t.edges()) {
      t.set_length(u, v, tree.length(u, v) * factor);
    }
    return t;
  };
  const Tree slow_tree = scaled(0.25);
  const Tree fast_tree = scaled(4.0);
  Rng sim(61);
  const Alignment slow = simulate_alignment(slow_tree, names, SubstModel::jc69(),
                                            RateModel::uniform(), options, sim);
  const Alignment fast = simulate_alignment(fast_tree, names, SubstModel::jc69(),
                                            RateModel::uniform(), options, sim);
  Alignment joint;
  for (std::size_t t = 0; t < slow.num_taxa(); ++t) {
    joint.add_sequence(slow.name(t), slow.row(t) + fast.row(t));
  }
  const PatternAlignment data(joint);
  const auto result = estimate_site_rates(tree, data, SubstModel::jc69());
  double slow_mean = 0.0;
  double fast_mean = 0.0;
  for (std::size_t s = 0; s < 120; ++s) slow_mean += result.site_rates[s];
  for (std::size_t s = 120; s < 240; ++s) fast_mean += result.site_rates[s];
  slow_mean /= 120;
  fast_mean /= 120;
  EXPECT_GT(fast_mean, 2.0 * slow_mean);
}

TEST(SiteRates, CategorizationGroupsAndNormalizes) {
  const std::vector<double> rates{0.1, 0.12, 0.11, 1.0, 1.1, 5.0, 5.2, 4.9};
  const RateCategorization cat = categorize_rates(rates, 4);
  EXPECT_EQ(cat.site_category.size(), rates.size());
  EXPECT_NEAR(cat.model.mean_rate(), 1.0, 1e-9);
  // Sites with similar rates share a category; extremes differ.
  EXPECT_EQ(cat.site_category[0], cat.site_category[1]);
  EXPECT_EQ(cat.site_category[5], cat.site_category[7]);
  EXPECT_NE(cat.site_category[0], cat.site_category[5]);
}

TEST(SiteRates, InvariantColumnGetsLowRate) {
  Alignment alignment;
  alignment.add_sequence("t0", string_to_codes("AAAAAAAAAAACGTACGT"));
  alignment.add_sequence("t1", string_to_codes("AAAAAAAAAAATGCATGA"));
  alignment.add_sequence("t2", string_to_codes("AAAAAAAAAAAGCATTGC"));
  alignment.add_sequence("t3", string_to_codes("AAAAAAAAAAACATGCAT"));
  Rng rng(67);
  const Tree tree = random_tree(4, rng);
  const PatternAlignment data(alignment);
  const auto result = estimate_site_rates(tree, data, SubstModel::jc69());
  EXPECT_LT(result.site_rates[0], 0.1) << "constant column ~ rate 0";
  EXPECT_GT(result.site_rates[14], result.site_rates[0]);
}

}  // namespace
}  // namespace fdml
