// Tests for the cross-process TCP transport: the pure wire codec (partial
// feeds, corrupt-frame corpus), the SocketFabric rendezvous/routing/death
// machinery (threads standing in for processes over real loopback sockets),
// the payload-seal parity contract, and a corrupt-wire corpus over every
// protocol codec.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "comm/chaos_proxy.hpp"
#include "comm/integrity.hpp"
#include "comm/socket.hpp"
#include "comm/wire.hpp"
#include "model/simulate.hpp"
#include "parallel/protocol.hpp"
#include "parallel/socket_cluster.hpp"
#include "search/search.hpp"
#include "search/task.hpp"
#include "tree/random.hpp"
#include "util/rng.hpp"

namespace fdml {
namespace {

// ---------------------------------------------------------------------------
// Wire codec

WireFrame sample_frame() {
  WireFrame frame;
  frame.kind = FrameKind::kData;
  frame.source = 3;
  frame.dest = 1;
  frame.tag = MessageTag::kResult;
  frame.payload = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};
  return frame;
}

TEST(Wire, EncodeDecodeRoundTrip) {
  const WireFrame frame = sample_frame();
  const auto bytes = encode_frame(frame);
  EXPECT_EQ(bytes.size(),
            kWireHeaderSize + frame.payload.size() + kWireFooterSize);

  FrameParser parser;
  std::vector<WireFrame> out;
  ASSERT_TRUE(parser.feed(bytes.data(), bytes.size(), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, FrameKind::kData);
  EXPECT_EQ(out[0].source, 3);
  EXPECT_EQ(out[0].dest, 1);
  EXPECT_EQ(out[0].tag, MessageTag::kResult);
  EXPECT_EQ(out[0].payload, frame.payload);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(Wire, EmptyPayloadRoundTrip) {
  WireFrame frame;
  frame.kind = FrameKind::kAnnounce;
  frame.source = 5;
  frame.dest = 0;
  const auto bytes = encode_frame(frame);
  FrameParser parser;
  std::vector<WireFrame> out;
  ASSERT_TRUE(parser.feed(bytes.data(), bytes.size(), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, FrameKind::kAnnounce);
  EXPECT_TRUE(out[0].payload.empty());
}

TEST(Wire, OneByteAtATime) {
  // The parser must accept arbitrarily fragmented reads — TCP guarantees
  // nothing about read boundaries.
  const auto bytes = encode_frame(sample_frame());
  FrameParser parser;
  std::vector<WireFrame> out;
  for (const std::uint8_t byte : bytes) {
    ASSERT_TRUE(parser.feed(&byte, 1, out));
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, sample_frame().payload);
}

TEST(Wire, RandomChunksManyFrames) {
  // Several frames back to back, fed in deterministic random-sized chunks:
  // all arrive, in order, regardless of how the stream was sliced.
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 16; ++i) {
    WireFrame frame = sample_frame();
    frame.payload.assign(static_cast<std::size_t>(i * 7), static_cast<std::uint8_t>(i));
    const auto bytes = encode_frame(frame);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  Rng rng(99);
  FrameParser parser;
  std::vector<WireFrame> out;
  std::size_t fed = 0;
  while (fed < stream.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(1 + rng.below(40), stream.size() - fed);
    ASSERT_TRUE(parser.feed(stream.data() + fed, chunk, out));
    fed += chunk;
  }
  ASSERT_EQ(out.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].payload.size(),
              static_cast<std::size_t>(i * 7));
  }
}

TEST(Wire, TruncationAtEveryOffsetIsIncompleteNotError) {
  // A prefix of a valid frame is just an incomplete frame: the parser waits
  // for the rest (the peer-death path), it does not report corruption.
  const auto bytes = encode_frame(sample_frame());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameParser parser;
    std::vector<WireFrame> out;
    ASSERT_TRUE(parser.feed(bytes.data(), cut, out)) << "cut at " << cut;
    EXPECT_TRUE(out.empty()) << "cut at " << cut;
    EXPECT_EQ(parser.error(), WireError::kNone) << "cut at " << cut;
  }
}

TEST(Wire, FlipEveryByteNeverYieldsAValidFrame) {
  // Single-byte corruption anywhere in the frame must never decode as the
  // original frame: either the parser rejects the stream outright (magic,
  // version, kind, digest) or it stalls waiting for bytes a corrupt length
  // prefix promised — and in no case buffers anything sized by the
  // corruption.
  const auto bytes = encode_frame(sample_frame());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (const std::uint8_t mask : {std::uint8_t{0xFF}, std::uint8_t{0x01}}) {
      auto corrupt = bytes;
      corrupt[i] ^= mask;
      FrameParser parser;
      std::vector<WireFrame> out;
      const bool ok = parser.feed(corrupt.data(), corrupt.size(), out);
      if (ok) {
        // Not rejected: the only legal outcome is an incomplete frame (a
        // length byte grew), never a decoded one.
        EXPECT_TRUE(out.empty()) << "byte " << i << " mask " << int(mask);
        EXPECT_LE(parser.buffered(), corrupt.size())
            << "byte " << i << " mask " << int(mask);
      } else {
        EXPECT_NE(parser.error(), WireError::kNone);
      }
    }
  }
}

TEST(Wire, OversizedLengthRejectedBeforeBuffering) {
  // Length prefix of 0xFFFFFFFF: rejected from the header alone — the
  // parser must not wait for (or allocate) 4 GB.
  auto bytes = encode_frame(sample_frame());
  bytes[16] = bytes[17] = bytes[18] = bytes[19] = 0xFF;
  FrameParser parser;
  std::vector<WireFrame> out;
  EXPECT_FALSE(parser.feed(bytes.data(), kWireHeaderSize, out));
  EXPECT_EQ(parser.error(), WireError::kOversizedPayload);
  EXPECT_STREQ(wire_error_name(parser.error()), "oversized_payload");
}

TEST(Wire, PoisonedParserStaysPoisoned) {
  auto bytes = encode_frame(sample_frame());
  bytes[0] ^= 0xFF;  // bad magic
  FrameParser parser;
  std::vector<WireFrame> out;
  EXPECT_FALSE(parser.feed(bytes.data(), bytes.size(), out));
  EXPECT_EQ(parser.error(), WireError::kBadMagic);
  // A subsequent valid frame must not resurrect the connection: framing is
  // untrustworthy once the stream has desynced.
  const auto good = encode_frame(sample_frame());
  EXPECT_FALSE(parser.feed(good.data(), good.size(), out));
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// SocketFabric over real loopback sockets (threads stand in for processes)

std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

SocketOptions fabric_options(int rank, int size, std::uint16_t port) {
  SocketOptions options;
  options.rank = rank;
  options.size = size;
  options.port = port;
  options.connect_timeout = std::chrono::milliseconds(5000);
  options.connect_retry = std::chrono::milliseconds(20);
  return options;
}

TEST(SocketFabric, RendezvousAndPointToPoint) {
  const std::uint16_t port = pick_free_port();
  SocketFabric hub(fabric_options(0, 3, port));
  hub.expect_departures();  // peers exit when their part is done

  std::thread peer1([&] {
    SocketFabric fabric(fabric_options(1, 3, port));
    auto endpoint = fabric.endpoint();
    endpoint->send(0, MessageTag::kResult, {1, 2, 3});
    endpoint->send(2, MessageTag::kTask, {9});  // routed peer -> hub -> peer
    const auto reply = endpoint->recv();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->source, 0);
    EXPECT_EQ(reply->tag, MessageTag::kShutdown);
  });
  std::thread peer2([&] {
    SocketFabric fabric(fabric_options(2, 3, port));
    auto endpoint = fabric.endpoint();
    const auto task = endpoint->recv();
    ASSERT_TRUE(task.has_value());
    EXPECT_EQ(task->source, 1);
    EXPECT_EQ(task->tag, MessageTag::kTask);
    EXPECT_EQ(task->payload, (std::vector<std::uint8_t>{9}));
  });

  ASSERT_TRUE(hub.wait_ready(std::chrono::milliseconds(5000)));
  auto endpoint = hub.endpoint();
  const auto message = endpoint->recv();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->source, 1);
  EXPECT_EQ(message->payload, (std::vector<std::uint8_t>{1, 2, 3}));
  endpoint->send(1, MessageTag::kShutdown, {});

  peer1.join();
  peer2.join();
  EXPECT_EQ(hub.stats().peer_deaths, 0u);
}

TEST(SocketFabric, SelfSendDeliversLocally) {
  const std::uint16_t port = pick_free_port();
  SocketFabric hub(fabric_options(0, 2, port));
  auto endpoint = hub.endpoint();
  endpoint->send(0, MessageTag::kProgress, {7});
  const auto message = endpoint->recv();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->source, 0);
  EXPECT_EQ(message->payload, (std::vector<std::uint8_t>{7}));
}

TEST(SocketFabric, InterleavedSendersPreserveSenderOrder) {
  // Ranks 2, 3, 4 blast numbered messages at rank 1 concurrently. TCP plus
  // the per-connection writer queue must keep each sender's stream in
  // order (interleaving across senders is fine).
  constexpr int kSize = 5;
  constexpr int kPerSender = 200;
  const std::uint16_t port = pick_free_port();
  SocketFabric hub(fabric_options(0, kSize, port));
  hub.expect_departures();  // senders exit as soon as their queue drains

  std::thread receiver([&] {
    SocketFabric fabric(fabric_options(1, kSize, port));
    auto endpoint = fabric.endpoint();
    std::map<int, std::uint32_t> next_expected;
    for (int received = 0; received < (kSize - 2) * kPerSender; ++received) {
      const auto message = endpoint->recv();
      ASSERT_TRUE(message.has_value());
      ASSERT_EQ(message->payload.size(), 4u);
      std::uint32_t sequence = 0;
      std::memcpy(&sequence, message->payload.data(), 4);
      EXPECT_EQ(sequence, next_expected[message->source])
          << "from rank " << message->source;
      next_expected[message->source] = sequence + 1;
    }
  });
  std::vector<std::thread> senders;
  for (int rank = 2; rank < kSize; ++rank) {
    senders.emplace_back([&, rank] {
      SocketFabric fabric(fabric_options(rank, kSize, port));
      auto endpoint = fabric.endpoint();
      for (std::uint32_t sequence = 0; sequence < kPerSender; ++sequence) {
        std::vector<std::uint8_t> payload(4);
        std::memcpy(payload.data(), &sequence, 4);
        endpoint->send(1, MessageTag::kResult, std::move(payload));
      }
      // Destruction closes the fabric, which flushes the queue first.
    });
  }
  for (auto& thread : senders) thread.join();
  receiver.join();
}

TEST(SocketFabric, MidMessagePeerDeathIsDetectedNotFatal) {
  // A raw client completes the handshake, sends *half* a frame, and drops
  // dead. The hub must mark the rank dead and keep serving everyone else —
  // a truncated frame at EOF is a death, not a crash or a hang.
  const std::uint16_t port = pick_free_port();
  SocketFabric hub(fabric_options(0, 3, port));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  WireFrame announce;
  announce.kind = FrameKind::kAnnounce;
  announce.source = 2;
  announce.dest = 0;
  announce.payload = {3, 0, 0, 0};  // u32 fabric size
  const auto announce_bytes = encode_frame(announce);
  ASSERT_EQ(::send(fd, announce_bytes.data(), announce_bytes.size(), 0),
            static_cast<ssize_t>(announce_bytes.size()));

  WireFrame data;
  data.kind = FrameKind::kData;
  data.source = 2;
  data.dest = 0;
  data.tag = MessageTag::kResult;
  data.payload.assign(256, 0xAB);
  const auto data_bytes = encode_frame(data);
  // Half a frame, then an abrupt close.
  ASSERT_GT(::send(fd, data_bytes.data(), data_bytes.size() / 2, 0), 0);
  ::close(fd);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (hub.stats().peer_deaths == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(hub.stats().peer_deaths, 1u);
  EXPECT_EQ(hub.dead_peers(), (std::vector<int>{2}));

  // The fabric is still alive for other ranks.
  std::thread peer1([&] {
    SocketFabric fabric(fabric_options(1, 3, port));
    auto endpoint = fabric.endpoint();
    const auto message = endpoint->recv();
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(message->tag, MessageTag::kShutdown);
  });
  auto endpoint = hub.endpoint();
  hub.expect_departures();
  // Rank 1 may still be rendezvousing; sends are queued until it announces.
  endpoint->send(1, MessageTag::kShutdown, {});
  peer1.join();
  EXPECT_EQ(hub.stats().peer_deaths, 1u);  // still only the abrupt one
}

TEST(SocketFabric, MalformedStreamDropsOnlyThatConnection) {
  const std::uint16_t port = pick_free_port();
  SocketFabric hub(fabric_options(0, 2, port));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::vector<std::uint8_t> garbage(64, 0x5A);
  ::send(fd, garbage.data(), garbage.size(), 0);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (hub.stats().frame_errors == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(hub.stats().frame_errors, 1u);
  ::close(fd);
}

TEST(SocketFabric, HubCloseShutsPeerMailbox) {
  // The "closed mailbox" contract: when the hub goes away, a peer's recv()
  // returns nullopt so its role loop unwinds — same as ThreadFabric.
  const std::uint16_t port = pick_free_port();
  auto hub = std::make_unique<SocketFabric>(fabric_options(0, 2, port));

  std::atomic<bool> unblocked{false};
  std::thread peer([&] {
    SocketFabric fabric(fabric_options(1, 2, port));
    auto endpoint = fabric.endpoint();
    const auto message = endpoint->recv();  // blocks until the hub dies
    EXPECT_FALSE(message.has_value());
    EXPECT_TRUE(endpoint->closed());
    unblocked = true;
  });
  ASSERT_TRUE(hub->wait_ready(std::chrono::milliseconds(5000)));
  hub->expect_departures();
  hub->close();
  peer.join();
  EXPECT_TRUE(unblocked.load());
}

TEST(SocketFabric, RendezvousTimesOutWithoutHub) {
  SocketOptions options = fabric_options(1, 2, pick_free_port());
  options.connect_timeout = std::chrono::milliseconds(200);
  EXPECT_THROW(SocketFabric{options}, std::runtime_error);
}

TEST(SocketFabric, SlowLorisHandshakeIsTimedOutNotServedForever) {
  // A connection that opens TCP and then trickles (here: one byte of an
  // announce, then silence) must be evicted after handshake_timeout — it
  // held no rank, so it is not a peer death — and the fabric must keep
  // serving real peers afterwards.
  const std::uint16_t port = pick_free_port();
  SocketOptions hub_options = fabric_options(0, 2, port);
  hub_options.handshake_timeout = std::chrono::milliseconds(150);
  SocketFabric hub(hub_options);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::uint8_t teaser = 'F';  // first byte of the frame magic
  ::send(fd, &teaser, 1, 0);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (hub.stats().handshake_timeouts == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(hub.stats().handshake_timeouts, 1u);
  EXPECT_EQ(hub.stats().peer_deaths, 0u);
  ::close(fd);

  // An honest peer still rendezvouses and talks.
  std::thread peer([&] {
    SocketFabric fabric(fabric_options(1, 2, port));
    auto endpoint = fabric.endpoint();
    const auto message = endpoint->recv();
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(message->tag, MessageTag::kShutdown);
  });
  ASSERT_TRUE(hub.wait_ready(std::chrono::milliseconds(5000)));
  hub.expect_departures();
  hub.endpoint()->send(1, MessageTag::kShutdown, {});
  peer.join();
}

TEST(SocketFabric, PeerReconnectsThroughOutageAndIsReadmitted) {
  // The EOF-was-fatal regression: route a peer through a chaos proxy, sever
  // the connection abruptly, and require (a) the hub counts a death and
  // then re-admits the rank, (b) the peer's mailbox stays open across the
  // outage, and (c) traffic flows again afterwards.
  const std::uint16_t hub_port = pick_free_port();
  SocketFabric hub(fabric_options(0, 2, hub_port));

  ChaosProxyOptions proxy_options;
  proxy_options.target_port = hub_port;
  ChaosProxy proxy(proxy_options);

  SocketOptions peer_options = fabric_options(1, 2, proxy.port());
  peer_options.reconnect = true;
  peer_options.reconnect_backoff = std::chrono::milliseconds(10);
  peer_options.reconnect_budget = std::chrono::milliseconds(5000);
  SocketFabric peer(peer_options);
  auto peer_endpoint = peer.endpoint();
  ASSERT_TRUE(hub.wait_ready(std::chrono::milliseconds(5000)));

  auto hub_endpoint = hub.endpoint();
  hub_endpoint->send(1, MessageTag::kProgress, {1});
  auto first = peer_endpoint->recv();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->payload, (std::vector<std::uint8_t>{1}));

  proxy.sever_all();

  // The peer redials (through the proxy again) and re-announces; the hub
  // sees the old connection die and accepts the rank back.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((hub.stats().readmissions == 0 || peer.stats().readmissions == 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(hub.stats().peer_deaths, 1u);
  EXPECT_GE(hub.stats().readmissions, 1u);
  EXPECT_GE(peer.stats().readmissions, 1u);

  // Both directions work on the new connection.
  hub_endpoint->send(1, MessageTag::kProgress, {2});
  const auto second = peer_endpoint->recv();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->payload, (std::vector<std::uint8_t>{2}));
  peer_endpoint->send(0, MessageTag::kResult, {3});
  const auto at_hub = hub_endpoint->recv();
  ASSERT_TRUE(at_hub.has_value());
  EXPECT_EQ(at_hub->payload, (std::vector<std::uint8_t>{3}));
  hub.expect_departures();
}

// ---------------------------------------------------------------------------
// End to end: the full paper layout over TCP matches the serial search

TEST(SocketCluster, SearchMatchesSerialBitForBit) {
  Rng rng(77);
  const Tree truth = random_yule_tree(8, rng);
  SimulateOptions sim;
  sim.num_sites = 200;
  const Alignment alignment =
      simulate_alignment(truth, default_taxon_names(8), SubstModel::jc69(),
                         RateModel::uniform(), sim, rng);
  const PatternAlignment data(alignment);
  const SubstModel model = SubstModel::jc69();
  const RateModel rates = RateModel::uniform();

  SearchOptions search_options;
  search_options.seed = 5;
  SerialTaskRunner serial(data, model, rates);
  const SearchResult serial_result =
      StepwiseSearch(data, search_options).run(serial);

  const std::uint16_t port = pick_free_port();
  SocketRunOptions options;
  options.socket = fabric_options(0, 5, port);  // master+foreman+monitor+2w

  std::vector<std::thread> roles;
  for (int rank = 1; rank < 5; ++rank) {
    roles.emplace_back([&, rank] {
      SocketRunOptions role_options = options;
      role_options.socket.rank = rank;
      EXPECT_NO_THROW(run_socket_role(data, model, rates, role_options));
    });
  }
  SearchResult socket_result;
  {
    SocketCluster cluster(data, model, rates, options);
    ASSERT_TRUE(cluster.wait_ready(std::chrono::milliseconds(10000)));
    socket_result = StepwiseSearch(data, search_options).run(cluster.runner());
    cluster.shutdown();
    EXPECT_EQ(cluster.master_stats().serial_fallbacks, 0u);
    EXPECT_EQ(cluster.fabric_stats().peer_deaths, 0u);
  }
  for (auto& thread : roles) thread.join();

  // The determinism contract the multiprocess CI job enforces with diff:
  // transport must not change the answer, bit for bit.
  EXPECT_EQ(socket_result.best_newick, serial_result.best_newick);
  EXPECT_EQ(socket_result.best_log_likelihood, serial_result.best_log_likelihood);
  EXPECT_EQ(socket_result.trees_evaluated, serial_result.trees_evaluated);
}

// ---------------------------------------------------------------------------
// Seal parity: tag_is_sealed must match what senders actually do

TEST(Integrity, SealTableMatchesSenderBehaviour) {
  // Payload-bearing tags travel sealed; empty control tags do not. This
  // table is the contract; worker.cpp seals its kGoodbye report and the
  // foreman opens it, so kGoodbye MUST be in the sealed set (regression:
  // it was missing, so goodbye digests were appended but never verified
  // or stripped by integrity-checking transports).
  EXPECT_TRUE(tag_is_sealed(MessageTag::kTask));
  EXPECT_TRUE(tag_is_sealed(MessageTag::kResult));
  EXPECT_TRUE(tag_is_sealed(MessageTag::kRound));
  EXPECT_TRUE(tag_is_sealed(MessageTag::kRoundDone));
  EXPECT_TRUE(tag_is_sealed(MessageTag::kMonitorEvent));
  EXPECT_TRUE(tag_is_sealed(MessageTag::kProgress));
  EXPECT_TRUE(tag_is_sealed(MessageTag::kRoundFailed));
  EXPECT_TRUE(tag_is_sealed(MessageTag::kGoodbye));
  EXPECT_TRUE(tag_is_sealed(MessageTag::kTelemetry));
  EXPECT_TRUE(tag_is_sealed(MessageTag::kMetricsReply));

  EXPECT_FALSE(tag_is_sealed(MessageTag::kHello));
  EXPECT_FALSE(tag_is_sealed(MessageTag::kMetricsQuery));
  EXPECT_FALSE(tag_is_sealed(MessageTag::kShutdown));
  EXPECT_FALSE(tag_is_sealed(MessageTag::kNack));
  EXPECT_FALSE(tag_is_sealed(MessageTag::kPing));
}

TEST(Integrity, SealedGoodbyeRoundTrips) {
  // The exact bytes worker_main sends on shutdown must open cleanly.
  WorkerReportMessage report;
  report.worker = 4;
  report.tasks_evaluated = 17;
  report.cpu_seconds = 1.5;
  std::vector<std::uint8_t> payload = report.pack();
  seal_payload(payload);
  ASSERT_TRUE(tag_is_sealed(MessageTag::kGoodbye));
  ASSERT_TRUE(open_payload(payload));
  const WorkerReportMessage decoded = WorkerReportMessage::unpack(payload);
  EXPECT_EQ(decoded.worker, 4);
  EXPECT_EQ(decoded.tasks_evaluated, 17u);
}

// ---------------------------------------------------------------------------
// Corrupt-wire corpus over every protocol codec

RoundMessage sample_round() {
  RoundMessage message;
  message.round_id = 42;
  for (int i = 0; i < 3; ++i) {
    TreeTask task;
    task.task_id = static_cast<std::uint64_t>(i);
    task.round_id = 42;
    task.newick = "((A,B),(C,D));";
    task.focus_taxon = i;
    message.tasks.push_back(task);
  }
  return message;
}

RoundDoneMessage sample_round_done() {
  RoundDoneMessage message;
  message.round_id = 42;
  message.best.task_id = 1;
  message.best.round_id = 42;
  message.best.log_likelihood = -1234.5;
  message.best.newick = "((A,B),(C,D));";
  for (int i = 0; i < 3; ++i) {
    TaskStat stat;
    stat.task_id = static_cast<std::uint64_t>(i);
    stat.cpu_seconds = 0.25;
    stat.bytes = 100;
    stat.worker = 3 + i;
    message.stats.push_back(stat);
  }
  return message;
}

/// Decodes every single-byte flip and every truncation of `bytes`. The
/// contract is narrow but absolute: a clean decode or a thrown
/// std::exception — never a crash, hang, or corruption-sized allocation
/// (ASan/UBSan builds of this test are the teeth).
template <typename Decode>
void run_corrupt_corpus(const std::vector<std::uint8_t>& bytes, Decode decode) {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (const std::uint8_t mask : {std::uint8_t{0xFF}, std::uint8_t{0x01},
                                    std::uint8_t{0x80}}) {
      auto corrupt = bytes;
      corrupt[i] ^= mask;
      try {
        decode(corrupt);
      } catch (const std::exception&) {
      }
    }
  }
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + static_cast<long>(cut));
    try {
      decode(truncated);
    } catch (const std::exception&) {
    }
  }
}

TEST(CorruptWire, RoundMessageCorpus) {
  run_corrupt_corpus(sample_round().pack(), [](const std::vector<std::uint8_t>& b) {
    (void)RoundMessage::unpack(b);
  });
}

TEST(CorruptWire, RoundDoneMessageCorpus) {
  run_corrupt_corpus(sample_round_done().pack(),
                     [](const std::vector<std::uint8_t>& b) {
                       (void)RoundDoneMessage::unpack(b);
                     });
}

TEST(CorruptWire, ProgressMessageCorpus) {
  ProgressMessage message;
  message.round_id = 7;
  message.completed = 3;
  message.expected = 9;
  run_corrupt_corpus(message.pack(), [](const std::vector<std::uint8_t>& b) {
    (void)ProgressMessage::unpack(b);
  });
}

TEST(CorruptWire, RoundFailedMessageCorpus) {
  RoundFailedMessage message;
  message.round_id = 7;
  message.reason = "all workers delinquent";
  run_corrupt_corpus(message.pack(), [](const std::vector<std::uint8_t>& b) {
    (void)RoundFailedMessage::unpack(b);
  });
}

TEST(CorruptWire, WorkerReportMessageCorpus) {
  WorkerReportMessage message;
  message.worker = 3;
  message.tasks_evaluated = 12;
  message.cpu_seconds = 2.5;
  run_corrupt_corpus(message.pack(), [](const std::vector<std::uint8_t>& b) {
    (void)WorkerReportMessage::unpack(b);
  });
}

TEST(CorruptWire, MonitorEventCorpus) {
  MonitorEvent event;
  event.kind = MonitorEventKind::kComplete;
  event.round_id = 4;
  event.task_id = 17;
  event.worker = 3;
  run_corrupt_corpus(event.pack(), [](const std::vector<std::uint8_t>& b) {
    (void)MonitorEvent::unpack(b);
  });
}

TEST(CorruptWire, TreeTaskAndResultCorpus) {
  Packer task_packer;
  sample_round().tasks[0].pack(task_packer);
  run_corrupt_corpus(task_packer.take(), [](const std::vector<std::uint8_t>& b) {
    Unpacker unpacker(b);
    (void)TreeTask::unpack(unpacker);
  });

  Packer result_packer;
  sample_round_done().best.pack(result_packer);
  run_corrupt_corpus(result_packer.take(),
                     [](const std::vector<std::uint8_t>& b) {
                       Unpacker unpacker(b);
                       (void)TaskResult::unpack(unpacker);
                     });
}

TEST(CorruptWire, CorruptTaskCountFailsAsTruncationNotAllocation) {
  // Regression for the reserve-before-validate bug: a task count of
  // 0xFFFFFFFF must throw the Unpacker's truncation error *before* any
  // count-proportional reserve() — pre-fix this line attempted a ~hundreds
  // of GB vector reserve.
  auto bytes = sample_round().pack();
  bytes[8] = bytes[9] = bytes[10] = bytes[11] = 0xFF;  // count follows round_id
  EXPECT_THROW((void)RoundMessage::unpack(bytes), std::out_of_range);
}

TEST(CorruptWire, CorruptStatCountFailsAsTruncationNotAllocation) {
  RoundDoneMessage message = sample_round_done();
  message.stats.clear();
  auto bytes = message.pack();  // with no stats, the count is the last u32
  ASSERT_GE(bytes.size(), 4u);
  for (std::size_t i = bytes.size() - 4; i < bytes.size(); ++i) bytes[i] = 0xFF;
  EXPECT_THROW((void)RoundDoneMessage::unpack(bytes), std::out_of_range);
}

}  // namespace
}  // namespace fdml
