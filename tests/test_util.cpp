// Unit and property tests for the util substrate: RNG, special functions,
// small linear algebra, LogNumber, binary packing, channels, CLI parsing.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <cmath>
#include <set>
#include <thread>

#ifndef __has_feature
#define __has_feature(x) 0  // GCC spells the sanitizers __SANITIZE_*__
#endif

#include "util/channel.hpp"
#include "util/cli.hpp"
#include "util/linalg.hpp"
#include "util/lognumber.hpp"
#include "util/packer.hpp"
#include "util/rng.hpp"
#include "util/special.hpp"

namespace fdml {
namespace {

TEST(Rng, AdjustUserSeedMakesSeedsOdd) {
  EXPECT_EQ(adjust_user_seed(0), 1u);
  EXPECT_EQ(adjust_user_seed(2), 3u);
  EXPECT_EQ(adjust_user_seed(7), 7u);
  EXPECT_EQ(adjust_user_seed(123456), 123457u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, BelowIsUnbiasedAcrossRange) {
  Rng rng(11);
  std::array<int, 5> counts{};
  for (int i = 0; i < 50000; ++i) counts[rng.below(5)] += 1;
  for (int c : counts) EXPECT_NEAR(c, 10000, 450);
}

TEST(Rng, ExponentialHasExpectedMean) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / 50000.0, 0.5, 0.02);
}

TEST(Rng, GammaHasExpectedMeanAndVariance) {
  Rng rng(5);
  const double shape = 2.5;
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(shape);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, shape, 0.06);
  EXPECT_NEAR(var, shape, 0.25);
}

TEST(Rng, GammaSmallShape) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.gamma(0.4);
  EXPECT_NEAR(sum / n, 0.4, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::multiset<int> sv(v.begin(), v.end());
  std::multiset<int> sw(w.begin(), w.end());
  EXPECT_EQ(sv, sw);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng rng(23);
  Rng child = rng.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (rng() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(31);
  std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 40000; ++i) {
    if (rng.categorical(weights) == 1) ++ones;
  }
  EXPECT_NEAR(ones / 40000.0, 0.75, 0.02);
}

// --- special functions ---

TEST(Special, GammaPKnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
  // P(0.5, x) = erf(sqrt(x)).
  for (double x : {0.2, 1.0, 3.0}) {
    EXPECT_NEAR(gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-10);
  }
}

TEST(Special, GammaPIsMonotoneCdf) {
  double prev = 0.0;
  for (double x = 0.0; x < 12.0; x += 0.25) {
    const double p = gamma_p(2.3, x);
    EXPECT_GE(p, prev - 1e-15);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_NEAR(gamma_p(2.3, 200.0), 1.0, 1e-12);
}

class GammaInverseRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(GammaInverseRoundTrip, InverseThenForwardIsIdentity) {
  const double shape = GetParam();
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = gamma_p_inverse(shape, p);
    EXPECT_NEAR(gamma_p(shape, x), p, 1e-8)
        << "shape=" << shape << " p=" << p << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaInverseRoundTrip,
                         ::testing::Values(0.1, 0.3, 0.5, 1.0, 2.0, 5.0, 20.0));

TEST(Special, ChiSquareQuantileMatchesTables) {
  // Classic table values: chi2(0.95, 1) = 3.841, chi2(0.95, 10) = 18.307.
  EXPECT_NEAR(chi_square_quantile(0.95, 1), 3.841, 5e-3);
  EXPECT_NEAR(chi_square_quantile(0.95, 10), 18.307, 5e-3);
  EXPECT_NEAR(chi_square_quantile(0.99, 5), 15.086, 5e-3);
}

TEST(Special, LogDoubleFactorialSmallCases) {
  // 5!! = 15, 7!! = 105, 6!! = 48.
  EXPECT_NEAR(std::exp(log_double_factorial(5)), 15.0, 1e-9);
  EXPECT_NEAR(std::exp(log_double_factorial(7)), 105.0, 1e-9);
  EXPECT_NEAR(std::exp(log_double_factorial(6)), 48.0, 1e-9);
  EXPECT_NEAR(std::exp(log_double_factorial(1)), 1.0, 1e-12);
}

// --- linear algebra ---

TEST(Linalg, IdentityAndMultiply) {
  const Mat4 identity = mat4_identity();
  Mat4 a{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) a[i][j] = i * 4 + j + 1;
  }
  EXPECT_EQ(mat4_max_abs_diff(mat4_mul(a, identity), a), 0.0);
  EXPECT_EQ(mat4_max_abs_diff(mat4_mul(identity, a), a), 0.0);
}

TEST(Linalg, ExpmOfZeroIsIdentity) {
  const Mat4 zero{};
  EXPECT_LT(mat4_max_abs_diff(mat4_expm(zero), mat4_identity()), 1e-14);
}

TEST(Linalg, ExpmOfDiagonal) {
  Mat4 d{};
  d[0][0] = 1.0;
  d[1][1] = -2.0;
  d[2][2] = 0.5;
  d[3][3] = 0.0;
  const Mat4 e = mat4_expm(d);
  EXPECT_NEAR(e[0][0], std::exp(1.0), 1e-12);
  EXPECT_NEAR(e[1][1], std::exp(-2.0), 1e-12);
  EXPECT_NEAR(e[2][2], std::exp(0.5), 1e-12);
  EXPECT_NEAR(e[3][3], 1.0, 1e-12);
  EXPECT_NEAR(e[0][1], 0.0, 1e-14);
}

TEST(Linalg, JacobiRecoversSymmetricMatrix) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    Mat4 sym{};
    for (int i = 0; i < 4; ++i) {
      for (int j = i; j < 4; ++j) {
        sym[i][j] = sym[j][i] = rng.uniform(-2.0, 2.0);
      }
    }
    Vec4 values{};
    Mat4 vectors{};
    jacobi_eigen_symmetric(sym, values, vectors);
    // Reconstruct V diag(values) V^T.
    Mat4 lv{};
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) lv[i][j] = vectors[i][j] * values[j];
    }
    const Mat4 rebuilt = mat4_mul(lv, mat4_transpose(vectors));
    EXPECT_LT(mat4_max_abs_diff(rebuilt, sym), 1e-10);
    // Eigenvalues sorted descending.
    for (int i = 0; i + 1 < 4; ++i) EXPECT_GE(values[i], values[i + 1]);
    // Vectors orthonormal.
    const Mat4 gram = mat4_mul(mat4_transpose(vectors), vectors);
    EXPECT_LT(mat4_max_abs_diff(gram, mat4_identity()), 1e-10);
  }
}

// --- LogNumber ---

TEST(LogNumber, FormatsModestValues) {
  EXPECT_EQ(LogNumber::from_value(1500.0).to_string(2), "1.5e+03");
  EXPECT_EQ(LogNumber::from_value(2.84e74).to_string(3), "2.84e+74");
}

TEST(LogNumber, HandlesValuesBeyondDouble) {
  // (2*200-5)!! overflows double; the log path must still format.
  LogNumber big = LogNumber::from_log(log_double_factorial(2 * 200 - 5));
  EXPECT_GT(big.log10(), 308.0);
  const std::string s = big.to_string();
  EXPECT_NE(s.find("e+"), std::string::npos);
}

TEST(LogNumber, ArithmeticInLogSpace) {
  const LogNumber a = LogNumber::from_value(1e100);
  const LogNumber b = LogNumber::from_value(1e250);
  EXPECT_NEAR((a * b).log10(), 350.0, 1e-9);
  EXPECT_NEAR((b / a).log10(), 150.0, 1e-9);
  EXPECT_TRUE(a < b);
}

// --- Packer / Unpacker ---

TEST(Packer, RoundTripsAllTypes) {
  Packer packer;
  packer.put_u8(7);
  packer.put_u32(0xdeadbeef);
  packer.put_u64(0x0123456789abcdefULL);
  packer.put_i32(-42);
  packer.put_i64(-1234567890123LL);
  packer.put_f64(3.141592653589793);
  packer.put_bool(true);
  packer.put_string("hello world");
  packer.put_f64_vector({1.0, -2.5, 1e-300});

  Unpacker unpacker(packer.data());
  EXPECT_EQ(unpacker.get_u8(), 7);
  EXPECT_EQ(unpacker.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(unpacker.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(unpacker.get_i32(), -42);
  EXPECT_EQ(unpacker.get_i64(), -1234567890123LL);
  EXPECT_EQ(unpacker.get_f64(), 3.141592653589793);
  EXPECT_TRUE(unpacker.get_bool());
  EXPECT_EQ(unpacker.get_string(), "hello world");
  EXPECT_EQ(unpacker.get_f64_vector(), (std::vector<double>{1.0, -2.5, 1e-300}));
  EXPECT_TRUE(unpacker.exhausted());
}

TEST(Packer, TruncatedMessageThrows) {
  Packer packer;
  packer.put_u32(5);
  Unpacker unpacker(packer.data());
  EXPECT_EQ(unpacker.get_u32(), 5u);
  EXPECT_THROW(unpacker.get_u64(), std::out_of_range);
}

TEST(Packer, CorruptVectorLengthThrowsBeforeAllocating) {
  // One flipped byte can turn a length prefix into 0xFFFFFFFF. The decoder
  // must reject it against the bytes actually present — specifically with
  // the truncation error, not by first attempting a ~32 GB reserve (the
  // pre-fix behaviour, which surfaced as bad_alloc or an OOM kill under
  // memory pressure instead of a clean protocol error).
  //
  // Overcommitting kernels can let a 32 GB reserve *succeed*, which would
  // mask the bug, so outside sanitizer builds (whose shadow mappings cannot
  // live under an address-space cap) the heap is temporarily capped tightly
  // enough that any corruption-sized allocation fails as bad_alloc — the
  // wrong exception type — instead of quietly succeeding.
#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__) && \
    !__has_feature(address_sanitizer) && !__has_feature(thread_sanitizer)
  rlimit previous{};
  ASSERT_EQ(getrlimit(RLIMIT_AS, &previous), 0);
  rlimit capped = previous;
  capped.rlim_cur = 4ull << 30;  // far below the 32 GB a corrupt count implies
  const bool limited = setrlimit(RLIMIT_AS, &capped) == 0;
#endif
  std::vector<std::uint8_t> bytes = {0xFF, 0xFF, 0xFF, 0xFF,  // count
                                     1,    2,    3,    4};    // 8 stray bytes
  bytes.resize(12, 0);
  Unpacker unpacker(bytes);
  EXPECT_THROW(unpacker.get_f64_vector(), std::out_of_range);
#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__) && \
    !__has_feature(address_sanitizer) && !__has_feature(thread_sanitizer)
  if (limited) setrlimit(RLIMIT_AS, &previous);
#endif
}

TEST(Packer, RequireCountGuardsLengthPrefixedLoops) {
  Packer packer;
  packer.put_f64_vector({1.0, 2.0});
  Unpacker unpacker(packer.data());
  const std::uint32_t n = unpacker.get_u32();
  EXPECT_NO_THROW(unpacker.require_count(n, 8));
  EXPECT_THROW(unpacker.require_count(n + 1, 8), std::out_of_range);
  // Overflow-adjacent counts must not wrap the byte arithmetic.
  EXPECT_THROW(unpacker.require_count(0xFFFFFFFFu, 8), std::out_of_range);
}

TEST(Packer, NanAndInfinitySurvive) {
  Packer packer;
  packer.put_f64(std::numeric_limits<double>::infinity());
  packer.put_f64(-std::numeric_limits<double>::infinity());
  packer.put_f64(std::nan(""));
  Unpacker unpacker(packer.data());
  EXPECT_TRUE(std::isinf(unpacker.get_f64()));
  EXPECT_TRUE(std::isinf(unpacker.get_f64()));
  EXPECT_TRUE(std::isnan(unpacker.get_f64()));
}

// --- Channel ---

TEST(Channel, FifoOrder) {
  Channel<int> ch;
  ch.send(1);
  ch.send(2);
  ch.send(3);
  EXPECT_EQ(ch.recv(), 1);
  EXPECT_EQ(ch.recv(), 2);
  EXPECT_EQ(ch.recv(), 3);
}

TEST(Channel, RecvForTimesOut) {
  Channel<int> ch;
  const auto result = ch.recv_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(result.has_value());
}

TEST(Channel, CloseDrainsThenReturnsNullopt) {
  Channel<int> ch;
  ch.send(9);
  ch.close();
  EXPECT_FALSE(ch.send(10));
  EXPECT_EQ(ch.recv(), 9);
  EXPECT_FALSE(ch.recv().has_value());
}

TEST(Channel, CrossThreadHandoff) {
  Channel<int> ch;
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) ch.send(i);
    ch.close();
  });
  int expected = 0;
  while (auto v = ch.recv()) {
    EXPECT_EQ(*v, expected++);
  }
  EXPECT_EQ(expected, 1000);
  producer.join();
}

// --- CLI ---

TEST(Cli, ParsesAllForms) {
  // Note: a bare --flag followed by a non-dashed token consumes it as the
  // flag's value (the usual greedy rule), so positional args go first.
  const char* argv[] = {"prog",      "positional", "--taxa=50", "--sites",
                        "1858",      "--verbose",  "--procs=4,8,16"};
  CliArgs args(7, argv);
  EXPECT_EQ(args.get_int("taxa", 0), 50);
  EXPECT_EQ(args.get_int("sites", 0), 1858);
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_FALSE(args.get_bool("quiet"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
  EXPECT_EQ(args.get_int_list("procs", {}),
            (std::vector<std::int64_t>{4, 8, 16}));
  EXPECT_EQ(args.get_int_list("absent", {1, 2}),
            (std::vector<std::int64_t>{1, 2}));
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
}

TEST(Cli, FlagConsumesFollowingValueToken) {
  const char* argv[] = {"prog", "--mode", "fast", "--flag"};
  CliArgs args(4, argv);
  EXPECT_EQ(args.get("mode", ""), "fast");
  EXPECT_TRUE(args.get_bool("flag"));
  EXPECT_TRUE(args.positional().empty());
}

}  // namespace
}  // namespace fdml
