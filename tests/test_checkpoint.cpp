// Tests for search checkpoint/restart (fastDNAml's long-run survival
// feature) and the assigned-rates likelihood (fastDNAml's actual
// per-site-category semantics, completing the DNArates workflow).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "likelihood/site_rates.hpp"
#include "model/simulate.hpp"
#include "search/search.hpp"
#include "tree/newick.hpp"
#include "tree/random.hpp"
#include "tree/splits.hpp"

namespace fdml {
namespace {

struct Fixture {
  Fixture() : truth(3), alignment(make_paper_like_dataset(10, 250, 5, &truth)),
              data(alignment) {}
  Tree truth;
  Alignment alignment;
  PatternAlignment data;
};

TEST(Checkpoint, SaveLoadRoundTrip) {
  SearchCheckpoint checkpoint;
  checkpoint.seed = 42;
  checkpoint.addition_order = {3, 1, 4, 0, 2};
  checkpoint.next_order_index = 4;
  checkpoint.tree_newick = "(a:0.1,b:0.2,(c:0.3,d:0.4):0.5);";
  checkpoint.log_likelihood = -123.456789012345;
  std::stringstream buffer;
  checkpoint.save(buffer);
  const SearchCheckpoint back = SearchCheckpoint::load(buffer);
  EXPECT_EQ(back.seed, 42u);
  EXPECT_EQ(back.addition_order, checkpoint.addition_order);
  EXPECT_EQ(back.next_order_index, 4);
  EXPECT_EQ(back.tree_newick, checkpoint.tree_newick);
  EXPECT_DOUBLE_EQ(back.log_likelihood, checkpoint.log_likelihood);
}

TEST(Checkpoint, LoadRejectsGarbage) {
  std::stringstream buffer("not-a-checkpoint 7\n");
  EXPECT_THROW(SearchCheckpoint::load(buffer), std::runtime_error);
  std::stringstream truncated("fdml-checkpoint 1\n1 4 2\n0 1\n-10.0\n");
  EXPECT_THROW(SearchCheckpoint::load(truncated), std::runtime_error);
}

TEST(Checkpoint, ResumeReproducesUninterruptedRun) {
  Fixture fx;
  const std::string path =
      (std::filesystem::temp_directory_path() / "fdml_ckpt_test").string();

  SerialTaskRunner runner(fx.data, SubstModel::jc69(), RateModel::uniform());
  SearchOptions options;
  options.seed = 9;
  options.checkpoint_path = path;

  // Uninterrupted run, writing checkpoints along the way. The file left on
  // disk is the *final* checkpoint; to simulate an interruption we rebuild
  // the mid-run state from the recorded event stream instead.
  const SearchResult full = StepwiseSearch(fx.data, options).run(runner);
  ASSERT_TRUE(std::filesystem::exists(path));
  const SearchCheckpoint final_checkpoint = SearchCheckpoint::load_file(path);
  EXPECT_EQ(final_checkpoint.next_order_index, 10);
  std::filesystem::remove(path);

  // Mid-run state after 6 taxa: the last event at taxa_in_tree == 6 is the
  // post-rearrangement tree — exactly what a checkpoint stores.
  const BestTreeEvent* mid = nullptr;
  for (const auto& event : full.events) {
    if (event.taxa_in_tree == 6) mid = &event;
  }
  ASSERT_NE(mid, nullptr);
  SearchCheckpoint resume_point;
  resume_point.seed = options.seed;
  resume_point.addition_order = full.addition_order;
  resume_point.next_order_index = 6;
  resume_point.tree_newick = mid->newick;
  resume_point.log_likelihood = mid->log_likelihood;

  SearchOptions resume_options = options;
  resume_options.checkpoint_path.clear();
  const SearchResult resumed =
      StepwiseSearch(fx.data, resume_options).resume(runner, resume_point);

  EXPECT_DOUBLE_EQ(resumed.best_log_likelihood, full.best_log_likelihood);
  const Tree a = tree_from_newick(full.best_newick, fx.data.names());
  const Tree b = tree_from_newick(resumed.best_newick, fx.data.names());
  EXPECT_EQ(robinson_foulds(a, b), 0);
  EXPECT_LT(resumed.trees_evaluated, full.trees_evaluated)
      << "the resumed run skips the completed prefix";
}

TEST(Checkpoint, ResumeValidatesConsistency) {
  Fixture fx;
  SerialTaskRunner runner(fx.data, SubstModel::jc69(), RateModel::uniform());
  SearchOptions options;
  StepwiseSearch search(fx.data, options);
  SearchCheckpoint bogus;
  bogus.addition_order = {0, 1, 2};  // wrong dataset size
  bogus.next_order_index = 3;
  bogus.tree_newick = "(T0001:1,T0002:1,T0003:1);";
  EXPECT_THROW(search.resume(runner, bogus), std::invalid_argument);

  SearchCheckpoint mismatched;
  mismatched.addition_order.resize(fx.data.num_taxa());
  for (std::size_t i = 0; i < mismatched.addition_order.size(); ++i) {
    mismatched.addition_order[i] = static_cast<int>(i);
  }
  mismatched.next_order_index = 5;  // but the tree has 3 tips
  mismatched.tree_newick = "(T0001:1,T0002:1,T0003:1);";
  EXPECT_THROW(search.resume(runner, mismatched), std::invalid_argument);
}

// --- assigned rates ---

TEST(AssignedRates, UniformAssignmentMatchesUniformModel) {
  Fixture fx;
  Rng rng(3);
  const Tree tree = random_tree(10, rng);
  LikelihoodEngine engine(fx.data, SubstModel::jc69(), RateModel::uniform());
  engine.attach(tree);
  const std::vector<double> unit_rates(fx.data.num_sites(), 1.0);
  EXPECT_NEAR(assigned_rates_log_likelihood(tree, fx.data, SubstModel::jc69(),
                                            unit_rates),
              engine.log_likelihood(), 1e-7);
}

TEST(AssignedRates, EstimatedAssignmentBeatsMixtureOnItsOwnData) {
  // ML-estimated per-site rates maximize the assigned-rates likelihood by
  // construction, so it must dominate both the uniform model and any value
  // under perturbed assignments.
  Fixture fx;
  Rng rng(7);
  Tree tree = fx.truth;
  const SubstModel model = SubstModel::jc69();
  const SiteRateResult estimated = estimate_site_rates(tree, fx.data, model);
  const double at_ml =
      assigned_rates_log_likelihood(tree, fx.data, model, estimated.site_rates);
  const std::vector<double> unit_rates(fx.data.num_sites(), 1.0);
  const double at_unit =
      assigned_rates_log_likelihood(tree, fx.data, model, unit_rates);
  EXPECT_GE(at_ml, at_unit);

  std::vector<double> perturbed = estimated.site_rates;
  for (double& r : perturbed) r *= rng.uniform(0.5, 2.0);
  EXPECT_GE(at_ml, assigned_rates_log_likelihood(tree, fx.data, model, perturbed));
}

TEST(AssignedRates, CategorizedAssignmentApproachesPerSiteOptimum) {
  Fixture fx;
  Tree tree = fx.truth;
  const SubstModel model = SubstModel::jc69();
  const SiteRateResult estimated = estimate_site_rates(tree, fx.data, model);
  const double exact =
      assigned_rates_log_likelihood(tree, fx.data, model, estimated.site_rates);

  // Replace each site's ML rate by its category mean (fastDNAml workflow).
  const RateCategorization categorized = categorize_rates(estimated.site_rates, 12);
  std::vector<double> category_rates(fx.data.num_sites());
  for (std::size_t s = 0; s < category_rates.size(); ++s) {
    category_rates[s] = categorized.model.rate(
        static_cast<std::size_t>(categorized.site_category[s]));
  }
  // Note: RateModel::user renormalizes rates to mean 1, so compare against
  // the unnormalized optimum with generous slack: the categorized value
  // must land close below the exact per-site optimum.
  const double with_categories =
      assigned_rates_log_likelihood(tree, fx.data, model, category_rates);
  EXPECT_LE(with_categories, exact + 1e-9);
  EXPECT_GT(with_categories, exact - 0.1 * std::fabs(exact))
      << "12 categories should capture most of the per-site signal";
}

TEST(AssignedRates, RejectsWrongLength) {
  Fixture fx;
  Rng rng(3);
  const Tree tree = random_tree(10, rng);
  EXPECT_THROW(assigned_rates_log_likelihood(tree, fx.data, SubstModel::jc69(),
                                             {1.0, 2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fdml
