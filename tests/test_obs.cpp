// Tests for the observability layer: metrics registry consistency under
// concurrent bumps, span tracer ring semantics, Chrome trace round-trips,
// flow-arc pairing across a real parallel run, report math against a
// hand-computed trace, and the worker goodbye-report propagation.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "model/simulate.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "parallel/cluster.hpp"
#include "parallel/monitor.hpp"
#include "search/search.hpp"
#include "simcluster/simulator.hpp"
#include "tree/random.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace fdml {
namespace {

// --- metrics registry ---

TEST(Metrics, ConcurrentCounterBumpsAreLossless) {
  obs::MetricsRegistry registry;
  obs::Counter& hits = registry.counter("test.hits");
  constexpr int kThreads = 8;
  constexpr int kBumps = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Re-resolve by name: registration must hand every thread the same
      // cell, and bumps must never be lost.
      obs::Counter& mine = registry.counter("test.hits");
      for (int i = 0; i < kBumps; ++i) mine.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hits.value(), static_cast<std::uint64_t>(kThreads) * kBumps);
  EXPECT_EQ(registry.snapshot().counter("test.hits"),
            static_cast<std::uint64_t>(kThreads) * kBumps);
}

TEST(Metrics, GaugeAndMissingNames) {
  obs::MetricsRegistry registry;
  registry.gauge("test.depth").set(7);
  registry.gauge("test.depth").add(-3);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.gauge("test.depth"), 4);
  EXPECT_EQ(snap.counter("never.registered"), 0u);
  EXPECT_EQ(snap.gauge("never.registered"), 0);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("test.lat", {1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (inclusive bound)
  h.observe(5.0);    // bucket 1
  h.observe(1000.0); // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);

  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "test.lat");
  EXPECT_EQ(snap.histograms[0].buckets,
            (std::vector<std::uint64_t>{2, 1, 0, 1}));
  EXPECT_NE(snap.to_json().find("test.lat"), std::string::npos);
}

// --- tracer rings ---

struct TracerGuard {
  explicit TracerGuard(std::size_t capacity = 1 << 12) {
    obs::Tracer::instance().enable(capacity);
  }
  ~TracerGuard() {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().reset();
  }
};

TEST(Tracer, RingOverflowKeepsNewestAndCountsDrops) {
  TracerGuard guard(8);
  obs::set_thread_name("ring-test");
  for (int i = 0; i < 20; ++i) {
    obs::instant("test", "tick", "i", i);
  }
  EXPECT_EQ(obs::Tracer::instance().dropped(), 12u);
  const obs::TraceLog log = obs::Tracer::instance().drain();
  EXPECT_EQ(log.dropped_events, 12u);
  std::vector<std::int64_t> kept;
  for (const obs::LogEvent& e : log.events) {
    if (e.cat == "test") kept.push_back(e.arg0);
  }
  // The 8 newest survive, in order.
  ASSERT_EQ(kept.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(kept[static_cast<std::size_t>(i)], 12 + i);
}

TEST(Tracer, DisabledRecordingIsANoOp) {
  ASSERT_FALSE(obs::trace_enabled());
  obs::instant("test", "ignored");
  obs::counter("test.counter", 1);
  { obs::Span span("test", "ignored-span"); }
  const obs::TraceLog log = obs::Tracer::instance().drain();
  for (const obs::LogEvent& e : log.events) {
    EXPECT_NE(e.cat, "test");
  }
}

TEST(Tracer, ChromeRoundTripPreservesEventsAndThreads) {
  TracerGuard guard;
  obs::set_thread_name("roundtrip");
  {
    obs::Span span("cat", "work", "in", 42);
    span.set_end_args("out", 7);
    obs::flow(obs::Phase::kFlowBegin, obs::task_flow_id(3, 9));
    obs::counter("depth", 5);
  }
  const obs::TraceLog original = obs::Tracer::instance().drain();
  std::ostringstream out;
  original.write_chrome(out);

  const obs::TraceLog loaded = obs::load_chrome_trace(out.str());
  ASSERT_EQ(loaded.events.size(), original.events.size());
  bool saw_begin = false, saw_end = false, saw_flow = false, saw_counter = false;
  for (const obs::LogEvent& e : loaded.events) {
    if (e.ph == obs::Phase::kBegin && e.name == "work") {
      saw_begin = true;
      EXPECT_EQ(e.arg0_name, "in");
      EXPECT_EQ(e.arg0, 42);
    }
    if (e.ph == obs::Phase::kEnd && e.name == "work") {
      saw_end = true;
      EXPECT_EQ(e.arg0_name, "out");
      EXPECT_EQ(e.arg0, 7);
    }
    if (e.ph == obs::Phase::kFlowBegin) {
      saw_flow = true;
      EXPECT_EQ(e.id, obs::task_flow_id(3, 9));
    }
    if (e.ph == obs::Phase::kCounter && e.name == "depth") {
      saw_counter = true;
      EXPECT_EQ(e.arg0, 5);
    }
  }
  EXPECT_TRUE(saw_begin && saw_end && saw_flow && saw_counter);
  bool named = false;
  for (const auto& [tid, name] : loaded.threads) {
    if (name == "roundtrip") named = true;
  }
  EXPECT_TRUE(named);
}

// --- report math on a hand-computed trace ---

obs::TraceLog two_worker_trace() {
  // worker A busy [0,2] and [3,5]; worker B busy [1,4]; wall = 6s (an
  // instant at t=6 pins the end). Hand-computed: busy = 7, covered union
  // = [0,5] = 5, serial fraction = 1 - 5/6, utilization = 7/12.
  obs::TraceLog log;
  log.set_thread(3, "worker-3");
  log.set_thread(4, "worker-4");
  const double s = 1e9;
  log.add(3, obs::Phase::kBegin, 0.0 * s, "worker", "task");
  log.add(3, obs::Phase::kEnd, 2.0 * s, "worker", "task");
  log.add(3, obs::Phase::kBegin, 3.0 * s, "worker", "task");
  log.add(3, obs::Phase::kEnd, 5.0 * s, "worker", "task");
  log.add(4, obs::Phase::kBegin, 1.0 * s, "worker", "task");
  log.add(4, obs::Phase::kEnd, 4.0 * s, "worker", "task");
  log.add(1, obs::Phase::kInstant, 6.0 * s, "foreman", "goodbye");
  log.sort_events();
  return log;
}

TEST(Report, HandComputedTwoWorkerMath) {
  const obs::TraceReport report = obs::analyze_trace(two_worker_trace(), 6);
  EXPECT_EQ(report.workers, 2);
  EXPECT_EQ(report.tasks, 3u);
  EXPECT_NEAR(report.wall_seconds, 6.0, 1e-9);
  EXPECT_NEAR(report.busy_seconds, 7.0, 1e-9);
  EXPECT_NEAR(report.covered_seconds, 5.0, 1e-9);
  EXPECT_NEAR(report.serial_fraction, 1.0 - 5.0 / 6.0, 1e-9);
  EXPECT_NEAR(report.utilization, 7.0 / 12.0, 1e-9);
  EXPECT_NEAR(report.mean_task_seconds, 7.0 / 3.0, 1e-9);

  ASSERT_EQ(report.per_worker.size(), 2u);
  EXPECT_NEAR(report.per_worker[0].busy_seconds, 4.0, 1e-9);
  EXPECT_EQ(report.per_worker[0].tasks, 2u);
  EXPECT_NEAR(report.per_worker[1].busy_seconds, 3.0, 1e-9);

  // 1s bins for worker A: busy 0-2 and 3-5 -> [1,1,0,1,1,0].
  ASSERT_EQ(report.per_worker[0].timeline.size(), 6u);
  EXPECT_NEAR(report.per_worker[0].timeline[2], 0.0, 1e-9);
  EXPECT_NEAR(report.per_worker[0].timeline[3], 1.0, 1e-9);

  const std::string text = obs::render_report(report);
  EXPECT_NE(text.find("worker-3"), std::string::npos);
  EXPECT_NE(text.find("serial fraction"), std::string::npos);
}

TEST(Report, ScalingRowMath) {
  obs::TraceReport baseline;
  baseline.wall_seconds = 10.0;
  baseline.workers = 1;
  obs::TraceReport run;
  run.wall_seconds = 2.5;
  run.workers = 4;
  const obs::ScalingRow row = obs::scaling_row(baseline, run);
  EXPECT_EQ(row.workers, 4);
  EXPECT_NEAR(row.speedup, 4.0, 1e-9);
  EXPECT_NEAR(row.efficiency, 1.0, 1e-9);
  EXPECT_NE(obs::render_scaling(row).find("speedup"), std::string::npos);
}

// --- full parallel run: trace shape, flows, worker reports ---

struct ObsFixture {
  ObsFixture(int taxa = 9, std::size_t sites = 120)
      : alignment(make(taxa, sites)), data(alignment) {}

  static Alignment make(int taxa, std::size_t sites) {
    Rng rng(77);
    const Tree truth = random_yule_tree(taxa, rng);
    SimulateOptions options;
    options.num_sites = sites;
    return simulate_alignment(truth, default_taxon_names(taxa),
                              SubstModel::jc69(), RateModel::uniform(),
                              options, rng);
  }

  Alignment alignment;
  PatternAlignment data;
};

TEST(Obs, TracedClusterRunHasBalancedSpansAndPairedFlows) {
  TracerGuard guard(1 << 16);
  ObsFixture fx;
  SearchOptions options;
  options.seed = 5;
  ClusterOptions cluster_options;
  cluster_options.num_workers = 4;
  InProcessCluster cluster(fx.data, SubstModel::jc69(), RateModel::uniform(),
                           cluster_options);
  StepwiseSearch(fx.data, options).run(cluster.runner());
  cluster.shutdown();
  obs::Tracer::instance().disable();

  std::ostringstream out;
  obs::Tracer::instance().drain().write_chrome(out);
  const obs::TraceLog log = obs::load_chrome_trace(out.str());
  ASSERT_EQ(log.dropped_events, 0u)
      << "ring overflowed; span pairing below would be vacuous";

  // Worker task spans must balance per thread.
  std::map<int, int> open;
  std::uint64_t tasks = 0;
  // Flow arcs: every dispatch (s) pairs with an accept (f) and at least
  // one execute step (t) under the same id.
  std::map<std::uint64_t, std::array<int, 3>> flows;
  for (const obs::LogEvent& e : log.events) {
    if (e.cat == "worker" && e.name == "task") {
      if (e.ph == obs::Phase::kBegin) {
        EXPECT_EQ(open[e.tid], 0) << "nested task span on tid " << e.tid;
        ++open[e.tid];
      } else if (e.ph == obs::Phase::kEnd) {
        --open[e.tid];
        ++tasks;
      }
    }
    if (e.cat == "flow") {
      if (e.ph == obs::Phase::kFlowBegin) ++flows[e.id][0];
      if (e.ph == obs::Phase::kFlowStep) ++flows[e.id][1];
      if (e.ph == obs::Phase::kFlowEnd) ++flows[e.id][2];
    }
  }
  for (const auto& [tid, count] : open) {
    EXPECT_EQ(count, 0) << "unbalanced spans on tid " << tid;
  }
  EXPECT_GT(tasks, 0u);
  EXPECT_FALSE(flows.empty());
  for (const auto& [id, counts] : flows) {
    EXPECT_EQ(counts[0], 1) << "flow " << id;
    EXPECT_GE(counts[1], 1) << "flow " << id;
    EXPECT_EQ(counts[2], 1) << "flow " << id;
  }

  // The report on the same trace must see the paper's layout.
  const obs::TraceReport report = obs::analyze_trace(log);
  EXPECT_EQ(report.workers, 4);
  EXPECT_EQ(report.tasks, tasks);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.utilization, 0.0);
  EXPECT_LE(report.utilization, 1.05);
  EXPECT_GE(report.serial_fraction, 0.0);
  EXPECT_LE(report.serial_fraction, 1.0);
  EXPECT_FALSE(report.rounds.empty());
  EXPECT_EQ(report.flow_begins, report.flow_ends);
}

TEST(Obs, WorkerKernelReportsReachForeman) {
  ObsFixture fx;
  SearchOptions options;
  options.seed = 5;
  ClusterOptions cluster_options;
  cluster_options.num_workers = 2;
  InProcessCluster cluster(fx.data, SubstModel::jc69(), RateModel::uniform(),
                           cluster_options);
  StepwiseSearch(fx.data, options).run(cluster.runner());
  cluster.shutdown();

  const ForemanStats& stats = cluster.foreman_stats();
  EXPECT_EQ(stats.goodbyes_received, 2u);
  ASSERT_EQ(stats.worker_reports.size(), 2u);
  std::uint64_t tasks = 0;
  for (const WorkerKernelReport& report : stats.worker_reports) {
    EXPECT_TRUE(report.reported) << "worker " << report.worker;
    EXPECT_GT(report.tasks_evaluated, 0u);
    EXPECT_GT(report.clv_computations, 0u);
    EXPECT_GT(report.edge_evaluations, 0u);
    tasks += report.tasks_evaluated;
  }
  EXPECT_EQ(tasks, stats.tasks_completed);

  // The shared registry saw the same totals under per-worker names.
  const obs::MetricsSnapshot snap = cluster.metrics_snapshot();
  for (const WorkerKernelReport& report : stats.worker_reports) {
    const std::string prefix =
        "worker." + std::to_string(report.worker) + ".";
    EXPECT_EQ(snap.counter(prefix + "tasks_evaluated"),
              report.tasks_evaluated);
    EXPECT_EQ(snap.counter(prefix + "clv_computations"),
              report.clv_computations);
  }
  EXPECT_EQ(snap.counter("foreman.tasks_completed"), stats.tasks_completed);
}

TEST(Obs, MonitorEventsBecomeTraceInstants) {
  TracerGuard guard;
  obs::set_thread_name("monitor-test");
  MonitorEvent event;
  event.kind = MonitorEventKind::kDelinquent;
  event.worker = 5;
  event.task_id = 17;
  trace_monitor_event(event);
  const obs::TraceLog log = obs::Tracer::instance().drain();
  bool found = false;
  for (const obs::LogEvent& e : log.events) {
    if (e.cat == "monitor" && e.name == "delinquent") {
      found = true;
      EXPECT_EQ(e.arg0_name, "worker");
      EXPECT_EQ(e.arg0, 5);
      EXPECT_EQ(e.arg1, 17);
    }
  }
  EXPECT_TRUE(found);
}

// --- simulator trace emission ---

TEST(Obs, SimulatorTraceMatchesLiveVocabulary) {
  SearchTrace trace;
  trace.num_taxa = 8;
  for (int r = 0; r < 3; ++r) {
    RoundTrace round;
    round.kind = RoundKind::kInsertion;
    round.master_seconds = 0.01;
    for (int t = 0; t < 6; ++t) {
      round.task_cpu_seconds.push_back(0.05 + 0.01 * t);
      round.task_bytes.push_back(2048);
    }
    trace.rounds.push_back(round);
  }

  obs::TraceLog log;
  SimClusterConfig config;
  config.processors = 7;  // 4 workers
  config.trace = &log;
  const SimResult sim = simulate_trace(trace, config);

  const obs::TraceReport report = obs::analyze_trace(log);
  EXPECT_EQ(report.workers, 4);
  EXPECT_EQ(report.tasks, trace.total_tasks());
  EXPECT_EQ(report.rounds.size(), 3u);
  EXPECT_NEAR(report.busy_seconds, trace.total_task_seconds(), 1e-9);
  // Virtual wall and the analyzer's wall describe the same schedule.
  EXPECT_NEAR(report.wall_seconds, sim.wall_seconds,
              0.05 * sim.wall_seconds + 1e-9);
  EXPECT_GT(report.utilization, 0.0);
  EXPECT_LE(report.utilization, 1.0 + 1e-9);
  EXPECT_EQ(report.flow_begins, report.flow_ends);

  // Round-trips through JSON like a live trace.
  std::ostringstream out;
  log.write_chrome(out);
  const obs::TraceLog loaded = obs::load_chrome_trace(out.str());
  EXPECT_EQ(loaded.events.size(), log.events.size());
}

// --- logging ---

TEST(Log, SinkCaptureAndPrefix) {
  std::vector<std::string> lines;
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kInfo);
  set_log_sink([&lines](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  set_log_thread_label("log-test");
  FDML_INFO("obs-test") << "hello " << 42;
  FDML_DEBUG("obs-test") << "below threshold";
  set_log_sink(nullptr);
  set_log_level(old_level);

  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("[info"), std::string::npos);
  EXPECT_NE(lines[0].find("log-test"), std::string::npos);
  EXPECT_NE(lines[0].find("obs-test: hello 42"), std::string::npos);
}

TEST(Log, ParseLogLevel) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_FALSE(parse_log_level("loud").has_value());
}

}  // namespace
}  // namespace fdml
