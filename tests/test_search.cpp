// Tests for the stepwise-addition + rearrangement search and its task
// machinery.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "model/simulate.hpp"
#include "search/search.hpp"
#include "tree/newick.hpp"
#include "tree/random.hpp"
#include "tree/splits.hpp"

namespace fdml {
namespace {

struct Fixture {
  Fixture(int taxa, std::size_t sites, std::uint64_t seed = 21)
      : truth(3), alignment(make_dataset(taxa, sites, seed, truth)), data(alignment) {}

  static Alignment make_dataset(int taxa, std::size_t sites, std::uint64_t seed,
                                Tree& truth_out) {
    Rng rng(seed);
    truth_out = random_yule_tree(taxa, rng);
    SimulateOptions options;
    options.num_sites = sites;
    return simulate_alignment(truth_out, default_taxon_names(taxa),
                              SubstModel::jc69(), RateModel::uniform(), options,
                              rng);
  }

  SerialTaskRunner runner() {
    return SerialTaskRunner(data, SubstModel::jc69(), RateModel::uniform());
  }

  Tree truth;
  Alignment alignment;
  PatternAlignment data;
};

TEST(TaskCodec, RoundTrip) {
  TreeTask task;
  task.task_id = 42;
  task.round_id = 7;
  task.newick = "(a:1,b:2,(c:0.5,d:0.5):1);";
  task.focus_taxon = 3;
  task.smooth_passes = 2;
  Packer packer;
  task.pack(packer);
  Unpacker unpacker(packer.data());
  const TreeTask back = TreeTask::unpack(unpacker);
  EXPECT_EQ(back.task_id, 42u);
  EXPECT_EQ(back.newick, task.newick);
  EXPECT_EQ(back.focus_taxon, 3);

  TaskResult result;
  result.task_id = 42;
  result.round_id = 7;
  result.log_likelihood = -1234.5;
  result.newick = task.newick;
  result.cpu_seconds = 0.25;
  result.worker = 9;
  Packer rp;
  result.pack(rp);
  Unpacker ru(rp.data());
  const TaskResult rback = TaskResult::unpack(ru);
  EXPECT_DOUBLE_EQ(rback.log_likelihood, -1234.5);
  EXPECT_EQ(rback.worker, 9);
}

TEST(TaskEvaluatorTest, FocusTaskOnlyTouchesAttachmentEdges) {
  Fixture fx(8, 200);
  TaskEvaluator evaluator(fx.data, SubstModel::jc69(), RateModel::uniform());

  Rng rng(5);
  Tree tree = random_tree(8, rng);
  const auto names = fx.data.names();
  TreeTask task;
  task.task_id = 1;
  task.newick = to_newick(tree, names, 17);
  task.focus_taxon = 4;
  task.smooth_passes = 3;
  const TaskResult result = evaluator.evaluate(task);
  const Tree optimized = tree_from_newick(result.newick, names);

  // Internal node ids are not stable across Newick, so compare the sorted
  // multiset of lengths away from the attachment junction: it must be
  // untouched by a focus task.
  auto lengths_excluding_junction = [](const Tree& t) {
    const int junction = t.neighbor(4, 0);
    std::multiset<double> lengths;
    for (const auto& [u, v] : t.edges()) {
      if (u == junction || v == junction) continue;
      lengths.insert(t.length(u, v));
    }
    return lengths;
  };
  const auto before = lengths_excluding_junction(tree);
  const auto after = lengths_excluding_junction(optimized);
  ASSERT_EQ(before.size(), after.size());
  auto ib = before.begin();
  auto ia = after.begin();
  for (; ib != before.end(); ++ib, ++ia) EXPECT_NEAR(*ib, *ia, 1e-12);
  EXPECT_EQ(robinson_foulds(tree, optimized), 0) << "topology unchanged";
}

TEST(TaskEvaluatorTest, FullTaskImprovesOnFocusTask) {
  Fixture fx(8, 300);
  TaskEvaluator evaluator(fx.data, SubstModel::jc69(), RateModel::uniform());
  Rng rng(6);
  Tree tree = random_tree(8, rng);
  TreeTask focus_task;
  focus_task.newick = to_newick(tree, fx.data.names(), 17);
  focus_task.focus_taxon = 2;
  focus_task.smooth_passes = 2;
  TreeTask full_task = focus_task;
  full_task.focus_taxon = -1;
  full_task.smooth_passes = 8;
  const double focus_lnl = evaluator.evaluate(focus_task).log_likelihood;
  const double full_lnl = evaluator.evaluate(full_task).log_likelihood;
  EXPECT_GE(full_lnl, focus_lnl - 1e-6);
}

TEST(Search, RecoversSimulatedTopology) {
  Fixture fx(10, 600);
  auto runner = fx.runner();
  SearchOptions options;
  options.seed = 3;
  StepwiseSearch search(fx.data, options);
  const SearchResult result = search.run(runner);
  const Tree best = tree_from_newick(result.best_newick, fx.data.names());
  EXPECT_LE(robinson_foulds(best, fx.truth), 2)
      << "600 JC sites should pin down a 10-taxon Yule tree (almost)";
  EXPECT_LT(result.best_log_likelihood, 0.0);
}

TEST(Search, DeterministicForSeed) {
  Fixture fx(8, 200);
  auto runner = fx.runner();
  SearchOptions options;
  options.seed = 11;
  StepwiseSearch search(fx.data, options);
  const SearchResult a = search.run(runner);
  const SearchResult b = search.run(runner);
  EXPECT_EQ(a.best_newick, b.best_newick);
  EXPECT_DOUBLE_EQ(a.best_log_likelihood, b.best_log_likelihood);
  EXPECT_EQ(a.addition_order, b.addition_order);
}

TEST(Search, AdditionOrderIsSeededPermutation) {
  Fixture fx(8, 100);
  auto runner = fx.runner();
  SearchOptions options;
  options.seed = 11;
  options.rearrange_cross = 0;
  options.final_rearrange_cross = 0;
  const SearchResult a = StepwiseSearch(fx.data, options).run(runner);
  options.seed = 13;
  const SearchResult b = StepwiseSearch(fx.data, options).run(runner);
  std::set<int> pa(a.addition_order.begin(), a.addition_order.end());
  EXPECT_EQ(pa.size(), 8u);
  EXPECT_NE(a.addition_order, b.addition_order) << "different seeds, different orders";
}

TEST(Search, TraceHasPaperTaskStructure) {
  Fixture fx(9, 150);
  auto runner = fx.runner();
  SearchOptions options;
  options.seed = 7;
  options.rearrange_after_each_addition = false;
  options.final_rearrange_cross = 1;
  StepwiseSearch search(fx.data, options);
  const SearchResult result = search.run(runner);
  const SearchTrace& trace = result.trace;

  ASSERT_FALSE(trace.rounds.empty());
  EXPECT_EQ(trace.rounds.front().kind, RoundKind::kInitial);
  EXPECT_EQ(trace.rounds.front().task_cpu_seconds.size(), 1u);

  // Insertion rounds must offer 2i-5 candidates for the i-th taxon.
  int expected_taxa = 4;
  for (const auto& round : trace.rounds) {
    if (round.kind != RoundKind::kInsertion) continue;
    EXPECT_EQ(round.taxa_in_tree, expected_taxa);
    EXPECT_EQ(static_cast<int>(round.task_cpu_seconds.size()),
              2 * expected_taxa - 5);
    ++expected_taxa;
  }
  EXPECT_EQ(expected_taxa, 10) << "one insertion round per taxon 4..9";

  // Rearrangement rounds at k=1 dispatch at most 2n-6 distinct topologies.
  for (const auto& round : trace.rounds) {
    if (round.kind != RoundKind::kRearrange) continue;
    EXPECT_LE(static_cast<int>(round.task_cpu_seconds.size()),
              2 * round.taxa_in_tree - 6);
    EXPECT_GT(round.task_cpu_seconds.size(), 0u);
  }

  // Byte accounting present for every task.
  for (const auto& round : trace.rounds) {
    EXPECT_EQ(round.task_bytes.size(), round.task_cpu_seconds.size());
    for (std::uint64_t bytes : round.task_bytes) EXPECT_GT(bytes, 0u);
  }
  EXPECT_EQ(trace.total_tasks(), result.trees_evaluated);
}

TEST(Search, EventLikelihoodsImproveWithinRearrangement) {
  Fixture fx(9, 300);
  auto runner = fx.runner();
  SearchOptions options;
  options.seed = 9;
  StepwiseSearch search(fx.data, options);
  const SearchResult result = search.run(runner);
  ASSERT_FALSE(result.events.empty());
  EXPECT_EQ(result.events.back().log_likelihood, result.best_log_likelihood);
  for (std::size_t i = 1; i < result.events.size(); ++i) {
    if (result.events[i].taxa_in_tree == result.events[i - 1].taxa_in_tree) {
      EXPECT_GT(result.events[i].log_likelihood,
                result.events[i - 1].log_likelihood)
          << "rearrangement events must strictly improve";
    }
  }
}

TEST(Search, FinalRearrangementNeverHurts) {
  Fixture fx(9, 250);
  auto runner = fx.runner();
  SearchOptions no_rearrange;
  no_rearrange.seed = 15;
  no_rearrange.rearrange_cross = 0;
  no_rearrange.final_rearrange_cross = 0;
  SearchOptions with_rearrange = no_rearrange;
  with_rearrange.final_rearrange_cross = 2;
  const SearchResult plain = StepwiseSearch(fx.data, no_rearrange).run(runner);
  const SearchResult improved =
      StepwiseSearch(fx.data, with_rearrange).run(runner);
  EXPECT_GE(improved.best_log_likelihood, plain.best_log_likelihood - 1e-6);
}

TEST(Search, QuickaddOffStillWorks) {
  Fixture fx(8, 200);
  auto runner = fx.runner();
  SearchOptions options;
  options.seed = 17;
  options.quickadd = false;
  StepwiseSearch search(fx.data, options);
  const SearchResult result = search.run(runner);
  EXPECT_LT(result.best_log_likelihood, 0.0);
  // Without quickadd there are no winner rounds.
  for (const auto& round : result.trace.rounds) {
    EXPECT_NE(round.kind, RoundKind::kWinner);
  }
}

TEST(Search, RejectsBadOrder) {
  Fixture fx(8, 100);
  auto runner = fx.runner();
  SearchOptions options;
  StepwiseSearch search(fx.data, options);
  EXPECT_THROW(search.run(runner, {0, 1, 2, 3, 4, 5, 6, 6}),
               std::invalid_argument);
  EXPECT_THROW(search.run(runner, {0, 1, 2}), std::invalid_argument);
}

TEST(Search, JumblesProduceCountedRunsAndBestIndex) {
  Fixture fx(8, 200);
  auto runner = fx.runner();
  SearchOptions options;
  options.seed = 2;  // even: adjusted internally
  const JumbleResult jumbles = run_jumbles(fx.data, options, 3, runner);
  ASSERT_EQ(jumbles.runs.size(), 3u);
  for (const auto& run : jumbles.runs) {
    EXPECT_LE(run.best_log_likelihood,
              jumbles.runs[jumbles.best_index].best_log_likelihood + 1e-12);
  }
  // Orders differ across jumbles (with overwhelming probability).
  EXPECT_FALSE(jumbles.runs[0].addition_order == jumbles.runs[1].addition_order &&
               jumbles.runs[1].addition_order == jumbles.runs[2].addition_order);
}

TEST(Trace, SaveLoadRoundTrip) {
  Fixture fx(8, 150);
  auto runner = fx.runner();
  SearchOptions options;
  options.seed = 19;
  StepwiseSearch search(fx.data, options);
  SearchResult result = search.run(runner);
  result.trace.dataset = "unit-test dataset";

  std::stringstream buffer;
  result.trace.save(buffer);
  const SearchTrace back = SearchTrace::load(buffer);
  EXPECT_EQ(back.dataset, "unit-test dataset");
  EXPECT_EQ(back.num_taxa, result.trace.num_taxa);
  EXPECT_EQ(back.rounds.size(), result.trace.rounds.size());
  EXPECT_EQ(back.total_tasks(), result.trace.total_tasks());
  EXPECT_NEAR(back.total_task_seconds(), result.trace.total_task_seconds(), 1e-9);
  for (std::size_t r = 0; r < back.rounds.size(); ++r) {
    EXPECT_EQ(back.rounds[r].kind, result.trace.rounds[r].kind);
    EXPECT_EQ(back.rounds[r].task_bytes, result.trace.rounds[r].task_bytes);
  }
}

TEST(Trace, EmptyDatasetLineSurvivesRoundTrip) {
  // Regression: an empty dataset name used to shift the parse by one line.
  SearchTrace trace;
  trace.dataset = "";
  trace.num_taxa = 5;
  RoundTrace round;
  round.kind = RoundKind::kInitial;
  round.taxa_in_tree = 3;
  round.task_cpu_seconds = {0.5};
  round.task_bytes = {100};
  trace.rounds.push_back(round);
  std::stringstream buffer;
  trace.save(buffer);
  const SearchTrace back = SearchTrace::load(buffer);
  EXPECT_EQ(back.dataset, "");
  EXPECT_EQ(back.num_taxa, 5);
  ASSERT_EQ(back.rounds.size(), 1u);
  EXPECT_DOUBLE_EQ(back.rounds[0].task_cpu_seconds[0], 0.5);
}

TEST(Trace, ScaleCostsIsLinear) {
  SearchTrace trace;
  RoundTrace round;
  round.task_cpu_seconds = {1.0, 2.0};
  round.master_seconds = 0.5;
  trace.rounds.push_back(round);
  trace.scale_costs(3.0);
  EXPECT_DOUBLE_EQ(trace.total_task_seconds(), 9.0);
  EXPECT_DOUBLE_EQ(trace.total_master_seconds(), 1.5);
}

}  // namespace
}  // namespace fdml
