// The telemetry plane: frame codec, emitter deltas, aggregator math under
// hostile frame orderings, Prometheus exposition edge cases, rotating trace
// segments, and the wedged-server read deadline.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "fdml.hpp"

namespace {

using namespace fdml;
using namespace fdml::obs;
using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Frame codec

TEST(TelemetryFrame, PackUnpackRoundTrips) {
  TelemetryFrame frame;
  frame.rank = 4;
  frame.incarnation = 0xABCDEF0123456789ull;
  frame.seq = 7;
  frame.counters["kernel.clv_computations"] = 120;
  frame.counters["worker.tasks_evaluated"] = 3;
  frame.gauges["queue.depth"] = -2;
  HistogramDelta h;
  h.name = "kernel.batch_fill";
  h.bounds = {1, 2, 4, 8, 16, 32};
  h.buckets = {5, 0, 1, 0, 0, 0, 2};
  h.count = 8;
  h.sum = 77.5;
  frame.histograms.push_back(h);

  const TelemetryFrame decoded = TelemetryFrame::unpack(frame.pack());
  EXPECT_EQ(decoded.rank, 4);
  EXPECT_EQ(decoded.incarnation, frame.incarnation);
  EXPECT_EQ(decoded.seq, 7u);
  EXPECT_EQ(decoded.counters, frame.counters);
  EXPECT_EQ(decoded.gauges, frame.gauges);
  ASSERT_EQ(decoded.histograms.size(), 1u);
  EXPECT_EQ(decoded.histograms[0].name, "kernel.batch_fill");
  EXPECT_EQ(decoded.histograms[0].buckets, h.buckets);
  EXPECT_EQ(decoded.histograms[0].count, 8u);
  EXPECT_DOUBLE_EQ(decoded.histograms[0].sum, 77.5);
}

TEST(TelemetryFrame, TruncatedPayloadThrowsInsteadOfOverReserving) {
  TelemetryFrame frame;
  frame.rank = 3;
  frame.seq = 1;
  for (int i = 0; i < 8; ++i) {
    frame.counters["c" + std::to_string(i)] = static_cast<std::uint64_t>(i);
  }
  std::vector<std::uint8_t> bytes = frame.pack();
  // Every truncation point must throw, never crash or allocate wildly off a
  // corrupt length prefix.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> clipped(bytes.begin(),
                                      bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(TelemetryFrame::unpack(clipped), std::exception) << cut;
  }
}

// ---------------------------------------------------------------------------
// Emitter deltas

TEST(TelemetryEmitter, ShipsDeltasNotTotals) {
  MetricsRegistry registry;
  TelemetryEmitter emitter(registry, 3);
  registry.counter("kernel.clv_computations").add(10);
  TelemetryFrame first = emitter.collect();
  EXPECT_EQ(first.rank, 3);
  EXPECT_EQ(first.seq, 1u);
  EXPECT_EQ(first.counters.at("kernel.clv_computations"), 10u);

  registry.counter("kernel.clv_computations").add(5);
  TelemetryFrame second = emitter.collect();
  EXPECT_EQ(second.seq, 2u);
  EXPECT_EQ(second.counters.at("kernel.clv_computations"), 5u);

  // Nothing changed: the frame is empty but still advances seq — it is the
  // liveness beacon that keeps an idle rank from reading as dead.
  TelemetryFrame idle = emitter.collect();
  EXPECT_EQ(idle.seq, 3u);
  EXPECT_TRUE(idle.counters.empty());
  EXPECT_TRUE(idle.histograms.empty());
}

TEST(TelemetryEmitter, FreshEmitterGetsFreshIncarnation) {
  MetricsRegistry registry;
  TelemetryEmitter a(registry, 3);
  TelemetryEmitter b(registry, 3);
  EXPECT_NE(a.incarnation(), 0u);
  EXPECT_NE(a.incarnation(), b.incarnation());
}

// ---------------------------------------------------------------------------
// Aggregator delta math under out-of-order / duplicate / revival

TelemetryFrame make_frame(int rank, std::uint64_t incarnation,
                          std::uint64_t seq, std::uint64_t tasks) {
  TelemetryFrame frame;
  frame.rank = rank;
  frame.incarnation = incarnation;
  frame.seq = seq;
  if (tasks != 0) frame.counters["worker.tasks_evaluated"] = tasks;
  return frame;
}

TEST(TelemetryAggregator, SumsDeltasAndDropsReplays) {
  TelemetryAggregator agg;
  const auto now = Clock::now();
  EXPECT_EQ(agg.apply(make_frame(3, 77, 1, 10), now), TelemetryApply::kApplied);
  EXPECT_EQ(agg.apply(make_frame(3, 77, 2, 5), now), TelemetryApply::kApplied);
  // A retransmit of seq 2 must not double-count its delta.
  EXPECT_EQ(agg.apply(make_frame(3, 77, 2, 5), now),
            TelemetryApply::kDuplicate);
  // A late seq-1 frame arriving after seq 2 is a replay too.
  EXPECT_EQ(agg.apply(make_frame(3, 77, 1, 10), now),
            TelemetryApply::kOutOfOrder);

  const auto ranks = agg.ranks(now);
  ASSERT_EQ(ranks.size(), 1u);
  EXPECT_EQ(ranks[0].counters.at("worker.tasks_evaluated"), 15u);
  EXPECT_EQ(ranks[0].frames, 2u);
  EXPECT_EQ(ranks[0].duplicates, 1u);
  EXPECT_EQ(ranks[0].out_of_order, 1u);
  EXPECT_EQ(agg.frames_applied(), 2u);
  EXPECT_EQ(agg.frames_dropped(), 2u);
}

TEST(TelemetryAggregator, CountersStayMonotonicAcrossRevival) {
  // A foreman dies after shipping 10 tasks and its replacement ships 4
  // more under a new incarnation: the rank total must be 14, never reset.
  TelemetryAggregator agg;
  const auto now = Clock::now();
  agg.apply(make_frame(1, 100, 1, 6), now);
  agg.apply(make_frame(1, 100, 2, 4), now);
  // Revival: new incarnation, sequence space restarts at 1 — NOT out of
  // order.
  EXPECT_EQ(agg.apply(make_frame(1, 200, 1, 3), now),
            TelemetryApply::kApplied);
  agg.apply(make_frame(1, 200, 2, 1), now);

  const auto ranks = agg.ranks(now);
  ASSERT_EQ(ranks.size(), 1u);
  EXPECT_EQ(ranks[0].counters.at("worker.tasks_evaluated"), 14u);
  EXPECT_EQ(ranks[0].incarnations, 1u);
  EXPECT_EQ(agg.cluster_counters().at("worker.tasks_evaluated"), 14u);
}

TEST(TelemetryAggregator, DeadRankIsMarkedStaleNotFrozen) {
  TelemetryAggregatorOptions options;
  options.stale_after = std::chrono::milliseconds(500);
  TelemetryAggregator agg(options);
  const auto t0 = Clock::now();
  agg.apply(make_frame(4, 9, 1, 2), t0);
  agg.apply(make_frame(5, 9, 1, 2), t0);
  // Rank 5 keeps reporting; rank 4 goes silent.
  const auto t1 = t0 + std::chrono::milliseconds(600);
  agg.apply(make_frame(5, 9, 2, 1), t1);

  const auto ranks = agg.ranks(t1);
  ASSERT_EQ(ranks.size(), 2u);
  EXPECT_EQ(ranks[0].rank, 4);
  EXPECT_TRUE(ranks[0].stale);
  EXPECT_GE(ranks[0].age_ms, 500);
  EXPECT_FALSE(ranks[1].stale);
  // Stale, not erased: the totals survive for the post-mortem.
  EXPECT_EQ(ranks[0].counters.at("worker.tasks_evaluated"), 2u);
}

TEST(TelemetryAggregator, RollupRingIsBounded) {
  TelemetryAggregatorOptions options;
  options.rollup_capacity = 4;
  TelemetryAggregator agg(options);
  const auto now = Clock::now();
  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    agg.apply(make_frame(3, 1, seq, seq), now);
  }
  const auto rollups = agg.rollups();
  ASSERT_EQ(rollups.size(), 4u);
  // Newest four samples, oldest first.
  EXPECT_EQ(rollups.front().counter_sum, 7u);
  EXPECT_EQ(rollups.back().counter_sum, 10u);
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(prometheus_name("kernel.clv_computations"),
            "kernel_clv_computations");
  EXPECT_EQ(prometheus_name("job.3.attempts"), "job_3_attempts");
  EXPECT_EQ(prometheus_name("weird-char%"), "weird_char_");
  // A leading digit is invalid in the exposition grammar.
  EXPECT_EQ(prometheus_name("7zip"), "_7zip");
  EXPECT_EQ(prometheus_name("ok:colon_name"), "ok:colon_name");
}

TEST(Prometheus, LabelEscaping) {
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label("a\nb"), "a\\nb");
}

TEST(Prometheus, SnapshotHistogramEndsAtInf) {
  MetricsRegistry registry;
  auto& h = registry.histogram("kernel.batch_fill", {1, 2, 4});
  h.observe(1);
  h.observe(3);
  h.observe(100);  // overflow bucket
  const std::string text = to_prometheus(registry.snapshot(), "fdml_", "");
  // Cumulative buckets: le="1" 1, le="2" 1, le="4" 2, le="+Inf" 3.
  EXPECT_NE(text.find("fdml_kernel_batch_fill_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("fdml_kernel_batch_fill_bucket{le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("fdml_kernel_batch_fill_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("fdml_kernel_batch_fill_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("fdml_kernel_batch_fill_sum"), std::string::npos);
}

TEST(Prometheus, SnapshotAttachesLabelsToEverySample) {
  MetricsRegistry registry;
  registry.counter("worker.tasks_evaluated").add(9);
  registry.histogram("lat", {1.0}).observe(0.5);
  const std::string text =
      to_prometheus(registry.snapshot(), "fdml_", "rank=\"0\"");
  EXPECT_NE(text.find("fdml_worker_tasks_evaluated{rank=\"0\"} 9\n"),
            std::string::npos);
  // Histogram rows merge the shared labels with the le label.
  EXPECT_NE(text.find("fdml_lat_bucket{rank=\"0\",le=\"+Inf\"} 1\n"),
            std::string::npos);
}

TEST(Prometheus, AggregatorExposesPerRankAndLivenessSeries) {
  TelemetryAggregatorOptions options;
  options.stale_after = std::chrono::milliseconds(100);
  TelemetryAggregator agg(options);
  const auto t0 = Clock::now();
  agg.apply(make_frame(3, 1, 1, 4), t0);
  const auto later = t0 + std::chrono::milliseconds(250);
  const std::string text = to_prometheus(agg, later);
  EXPECT_NE(text.find("fdml_worker_tasks_evaluated{rank=\"3\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("fdml_rank_stale{rank=\"3\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("fdml_telemetry_frames_applied 1\n"),
            std::string::npos);
}

TEST(Prometheus, JobProgressSeries) {
  JobProgressRow row;
  row.job_id = 2;
  row.phase = "rearrange";
  row.taxa_in_tree = 9;
  row.round = 12;
  row.tasks_done = 30;
  row.tasks_total = 44;
  row.best_log_likelihood = -1234.5;
  row.has_best = true;
  row.checkpoint_generation = 3;
  const std::string text = to_prometheus(std::vector<JobProgressRow>{row});
  EXPECT_NE(text.find("fdml_job_phase{job=\"2\",phase=\"rearrange\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("fdml_job_tasks_done{job=\"2\"} 30\n"),
            std::string::npos);
  EXPECT_NE(text.find("fdml_job_best_log_likelihood{job=\"2\"} -1234.5\n"),
            std::string::npos);

  const std::string json = job_progress_json({row});
  EXPECT_NE(json.find("\"kind\":\"job_progress\""), std::string::npos);
  EXPECT_NE(json.find("\"tasks_total\":44"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rotating trace segments (satellite: drops surface in obs.trace_dropped)

class SegmentDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fdml-seg-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    Tracer::instance().enable();
    Tracer::instance().reset();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().reset();
    std::filesystem::remove_all(dir_);
  }
  std::filesystem::path dir_;
};

TEST_F(SegmentDir, RotatesWritesAndStitches) {
  TraceSegmentOptions options;
  options.max_segment_bytes = 2048;  // tiny: force several rotations
  options.max_segments = 64;
  TraceSegmentWriter writer(dir_.string(), options);
  writer.start();
  std::size_t emitted = 0;
  for (int burst = 0; burst < 6; ++burst) {
    for (int i = 0; i < 200; ++i) {
      instant("test", "tick", "i", i);
      ++emitted;
    }
    writer.flush_now();
  }
  writer.stop();
  EXPECT_GE(writer.segments_written(), 2u);
  EXPECT_EQ(writer.dropped_seen(), 0u);

  // Each segment must be an independently valid Chrome trace, and the
  // stitched set must contain every emitted event exactly once.
  std::vector<TraceLog> logs;
  for (std::uint64_t i = 0; i < writer.segments_written(); ++i) {
    std::ifstream in(dir_ / ("segment-" + std::to_string(i) + ".json"));
    ASSERT_TRUE(in.good()) << "segment " << i;
    logs.push_back(load_chrome_trace(in));
  }
  const TraceLog merged = merge_trace_logs(logs);
  std::size_t ticks = 0;
  for (const auto& event : merged.events) {
    if (event.name == "tick") ++ticks;
  }
  EXPECT_EQ(ticks, emitted);
  // Stitching preserves time order.
  for (std::size_t i = 1; i < merged.events.size(); ++i) {
    EXPECT_LE(merged.events[i - 1].ts_ns, merged.events[i].ts_ns);
  }
}

TEST_F(SegmentDir, RetentionPrunesOldestSegments) {
  TraceSegmentOptions options;
  options.max_segment_bytes = 512;
  options.max_segments = 2;
  TraceSegmentWriter writer(dir_.string(), options);
  writer.start();
  for (int burst = 0; burst < 8; ++burst) {
    for (int i = 0; i < 200; ++i) instant("test", "tick", "i", i);
    writer.flush_now();
  }
  writer.stop();
  ASSERT_GE(writer.segments_written(), 3u);
  std::size_t on_disk = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    (void)entry;
    ++on_disk;
  }
  EXPECT_LE(on_disk, options.max_segments);
  // segment-0 was pruned; the newest survives.
  EXPECT_FALSE(std::filesystem::exists(dir_ / "segment-0.json"));
  EXPECT_TRUE(std::filesystem::exists(
      dir_ / ("segment-" + std::to_string(writer.segments_written() - 1) +
              ".json")));
}

TEST_F(SegmentDir, RingOverflowSurfacesInDroppedCounter) {
  // Tiny rings so a burst overflows; the flush must surface the drops in
  // the obs.trace_dropped counter instead of losing them silently.
  Tracer::instance().enable(64);
  const std::uint64_t before =
      MetricsRegistry::process().snapshot().counter("obs.trace_dropped");
  for (int i = 0; i < 5000; ++i) instant("test", "flood", "i", i);
  TraceSegmentWriter writer(dir_.string(), {});
  writer.start();
  writer.flush_now();
  writer.stop();
  EXPECT_GT(writer.dropped_seen(), 0u);
  const std::uint64_t after =
      MetricsRegistry::process().snapshot().counter("obs.trace_dropped");
  EXPECT_EQ(after - before, writer.dropped_seen());
}

// ---------------------------------------------------------------------------
// Wedged-server read deadline (satellite: clients must not block forever)

TEST(ServiceTimeout, WedgedServerRaisesTimeoutNotHang) {
  // A listener that accepts and then never replies — the exact failure mode
  // that used to wedge `fdmld submit` forever.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);
  std::atomic<bool> stop{false};
  std::thread acceptor([&] {
    while (!stop.load()) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd < 0) break;
      // Read the request so the client's send succeeds, then go mute.
      char sink[4096];
      while (::recv(fd, sink, sizeof sink, MSG_DONTWAIT) > 0) {
      }
      while (!stop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      ::close(fd);
    }
  });

  const auto t0 = Clock::now();
  bool timed_out = false;
  try {
    service_query_stats("127.0.0.1", port, std::chrono::milliseconds(300));
  } catch (const ServiceTimeoutError& error) {
    timed_out = true;
    EXPECT_NE(std::string(error.what()).find("timed out"), std::string::npos);
    EXPECT_EQ(error.timeout(), std::chrono::milliseconds(300));
  }
  const auto elapsed = Clock::now() - t0;
  EXPECT_TRUE(timed_out);
  EXPECT_LT(elapsed, std::chrono::seconds(5));

  bool scrape_timed_out = false;
  try {
    service_scrape("127.0.0.1", port, std::chrono::milliseconds(200));
  } catch (const ServiceTimeoutError&) {
    scrape_timed_out = true;
  }
  EXPECT_TRUE(scrape_timed_out);

  stop.store(true);
  ::shutdown(listener, SHUT_RDWR);
  ::close(listener);
  acceptor.join();
}

}  // namespace
