// End-to-end integration tests: the full user pipeline across modules —
// dataset on disk -> PHYLIP -> pattern compression -> model from data ->
// search (serial and parallel) -> consensus -> rendering — plus cross-model
// and rate-heterogeneity searches and trace files on disk.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "fdml.hpp"

namespace fdml {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("fdml_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string file(const std::string& name) const { return (path_ / name).string(); }

 private:
  std::filesystem::path path_;
};

TEST(Integration, FullPipelineThroughDisk) {
  TempDir dir;
  // 1. Generate a dataset and write it to disk as PHYLIP.
  Tree truth(3);
  const Alignment alignment = make_paper_like_dataset(12, 400, 7, &truth);
  write_phylip_file(dir.file("data.phy"), alignment);

  // 2. Read it back; compression and frequencies.
  const Alignment loaded = read_phylip_file(dir.file("data.phy"));
  EXPECT_TRUE(loaded == alignment);
  const PatternAlignment data(loaded);
  EXPECT_LT(data.num_patterns(), loaded.num_sites());

  // 3. Model from the data (the fastDNAml default workflow).
  const SubstModel model = SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);

  // 4. Serial search over 3 orderings.
  SerialTaskRunner runner(data, model, RateModel::uniform());
  SearchOptions options;
  options.seed = 1;
  const JumbleResult jumbles = run_jumbles(data, options, 3, runner);
  const Tree best = tree_from_newick(
      jumbles.runs[jumbles.best_index].best_newick, data.names());
  EXPECT_LE(robinson_foulds(best, truth), 4);

  // 5. Consensus across orderings.
  std::vector<Tree> trees;
  for (const auto& run : jumbles.runs) {
    trees.push_back(tree_from_newick(run.best_newick, data.names()));
  }
  const GeneralTree consensus = consensus_tree(trees, data.names());
  EXPECT_EQ(consensus.leaf_count(), 12u);

  // 6. Save the best tree, reload, verify topology identity.
  {
    std::ofstream out(dir.file("best.nwk"));
    out << to_newick(best, data.names(), 17) << "\n";
  }
  {
    std::ifstream in(dir.file("best.nwk"));
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const Tree reloaded = tree_from_newick(text, data.names());
    EXPECT_EQ(robinson_foulds(best, reloaded), 0);
  }

  // 7. Render SVG + ASCII without errors and with all taxa present.
  GeneralTree display = GeneralTree::from_tree(best, data.names());
  display.canonicalize();
  const std::string svg = render_svg(display);
  const std::string ascii = render_ascii(display);
  for (const std::string& name : data.names()) {
    EXPECT_NE(svg.find(name), std::string::npos);
    EXPECT_NE(ascii.find(name), std::string::npos);
  }

  // 8. Trace file round trip through disk.
  jumbles.runs[0].trace.save_file(dir.file("run.trace"));
  const SearchTrace trace = SearchTrace::load_file(dir.file("run.trace"));
  EXPECT_EQ(trace.total_tasks(), jumbles.runs[0].trace.total_tasks());

  // 9. The trace replays on the simulator.
  SimClusterConfig config;
  config.processors = 8;
  EXPECT_GT(simulate_trace(trace, config).wall_seconds, 0.0);
}

TEST(Integration, ParallelAndSerialPipelinesAgree) {
  Tree truth(3);
  const Alignment alignment = make_paper_like_dataset(10, 300, 3, &truth);
  const PatternAlignment data(alignment);
  const SubstModel model = SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
  const RateModel rates = RateModel::discrete_gamma(0.7, 3);

  SearchOptions options;
  options.seed = 5;
  SerialTaskRunner serial(data, model, rates);
  const SearchResult serial_result = StepwiseSearch(data, options).run(serial);

  ClusterOptions cluster_options;
  cluster_options.num_workers = 2;
  InProcessCluster cluster(data, model, rates, cluster_options);
  const SearchResult parallel_result =
      StepwiseSearch(data, options).run(cluster.runner());

  EXPECT_NEAR(parallel_result.best_log_likelihood,
              serial_result.best_log_likelihood, 1e-6);
  const Tree a = tree_from_newick(serial_result.best_newick, data.names());
  const Tree b = tree_from_newick(parallel_result.best_newick, data.names());
  EXPECT_EQ(robinson_foulds(a, b), 0);
}

TEST(Integration, GammaRatesImproveFitOnHeterogeneousData) {
  // Simulate strongly heterogeneous data; search once under uniform rates
  // and once under gamma: gamma must fit better on the same best topology.
  Rng rng(11);
  const Tree truth = random_yule_tree(10, rng);
  SimulateOptions sim;
  sim.num_sites = 500;
  const Alignment alignment = simulate_alignment(
      truth, default_taxon_names(10), SubstModel::jc69(),
      RateModel::discrete_gamma(0.3, 8), sim, rng);
  const PatternAlignment data(alignment);

  TreeEvaluator uniform(data, SubstModel::jc69(), RateModel::uniform());
  TreeEvaluator gamma(data, SubstModel::jc69(), RateModel::discrete_gamma(0.3, 4));
  Tree t1 = truth;
  Tree t2 = truth;
  const double uniform_lnl = uniform.evaluate(t1).log_likelihood;
  const double gamma_lnl = gamma.evaluate(t2).log_likelihood;
  EXPECT_GT(gamma_lnl, uniform_lnl + 10.0)
      << "gamma rates must fit heterogeneous data decisively better";
}

TEST(Integration, ModelChoiceMattersOnBiasedData) {
  // Data simulated under strong transition bias and skewed frequencies:
  // F84 with matched parameters must beat JC69 on the true tree.
  Rng rng(13);
  const Tree truth = random_yule_tree(10, rng);
  const Vec4 pi{0.4, 0.15, 0.15, 0.3};
  const SubstModel generator = SubstModel::f84_from_tstv(pi, 4.0);
  SimulateOptions sim;
  sim.num_sites = 600;
  const Alignment alignment =
      simulate_alignment(truth, default_taxon_names(10), generator,
                         RateModel::uniform(), sim, rng);
  const PatternAlignment data(alignment);

  TreeEvaluator jc(data, SubstModel::jc69(), RateModel::uniform());
  TreeEvaluator f84(data, SubstModel::f84_from_tstv(data.base_frequencies(), 4.0),
                    RateModel::uniform());
  Tree t1 = truth;
  Tree t2 = truth;
  EXPECT_GT(f84.evaluate(t2).log_likelihood,
            jc.evaluate(t1).log_likelihood + 10.0);
}

TEST(Integration, DuplicateSequencesAreHandled) {
  // Identical sequences are legal input; the search must place them as
  // neighbors-or-equivalent without numerical trouble.
  Alignment alignment;
  Rng rng(17);
  const Tree truth = random_yule_tree(6, rng);
  SimulateOptions sim;
  sim.num_sites = 200;
  Alignment base = simulate_alignment(truth, default_taxon_names(6),
                                      SubstModel::jc69(), RateModel::uniform(),
                                      sim, rng);
  for (std::size_t t = 0; t < base.num_taxa(); ++t) {
    alignment.add_sequence(base.name(t), base.row(t));
  }
  alignment.add_sequence("T_clone", base.row(0));  // exact duplicate of T0001
  const PatternAlignment data(alignment);
  SerialTaskRunner runner(data, SubstModel::jc69(), RateModel::uniform());
  SearchOptions options;
  options.seed = 1;
  const SearchResult result = StepwiseSearch(data, options).run(runner);
  EXPECT_TRUE(std::isfinite(result.best_log_likelihood));
  const Tree best = tree_from_newick(result.best_newick, data.names());
  // The clone attaches right next to its twin: their path crosses at most
  // two internal nodes (their shared attachment may host a zero branch).
  const int clone = data.names().size() - 1;
  std::vector<int> tips;
  best.collect_subtree_tips(best.neighbor(clone, 0), clone, tips);
  (void)tips;
  best.check_valid();
}

TEST(Integration, BootstrapConsensusRenders) {
  Tree truth(3);
  const Alignment alignment = make_paper_like_dataset(8, 250, 21, &truth);
  BootstrapOptions boot;
  boot.replicates = 4;
  boot.seed = 3;
  const BootstrapResult result =
      run_bootstrap(alignment, SubstModel::jc69(), RateModel::uniform(), boot);
  AsciiOptions ascii;
  ascii.show_support = true;
  const std::string art = render_ascii(result.consensus, ascii);
  EXPECT_FALSE(art.empty());
  const std::string svg = render_svg(result.consensus);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace fdml
