// Tests for the comparator methods: Fitch parsimony and neighbor joining.
#include <gtest/gtest.h>

#include "baseline/nj.hpp"
#include "baseline/parsimony.hpp"
#include "model/simulate.hpp"
#include "tree/newick.hpp"
#include "tree/random.hpp"
#include "tree/splits.hpp"

namespace fdml {
namespace {

std::vector<std::string> names_for(int n) {
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) names.push_back("t" + std::to_string(i));
  return names;
}

TEST(Parsimony, HandComputedScores) {
  // Four taxa, known topology ((t0,t1),(t2,t3)).
  Alignment alignment;
  alignment.add_sequence("t0", string_to_codes("AAG"));
  alignment.add_sequence("t1", string_to_codes("AAG"));
  alignment.add_sequence("t2", string_to_codes("CAG"));
  alignment.add_sequence("t3", string_to_codes("CAT"));
  const PatternAlignment data(alignment);
  const Tree tree =
      tree_from_newick("((t0:1,t1:1):1,(t2:1,t3:1):1);", names_for(4));
  // Site 1: A,A,C,C -> 1 change; site 2: constant -> 0; site 3: G,G,G,T -> 1.
  EXPECT_DOUBLE_EQ(fitch_score(tree, data), 2.0);
}

TEST(Parsimony, TopologyMattersForHomoplasy) {
  Alignment alignment;
  alignment.add_sequence("t0", string_to_codes("A"));
  alignment.add_sequence("t1", string_to_codes("C"));
  alignment.add_sequence("t2", string_to_codes("A"));
  alignment.add_sequence("t3", string_to_codes("C"));
  const PatternAlignment data(alignment);
  // Grouping the matching states needs 1 change; splitting them needs 2.
  const Tree good =
      tree_from_newick("((t0:1,t2:1):1,(t1:1,t3:1):1);", names_for(4));
  const Tree bad =
      tree_from_newick("((t0:1,t1:1):1,(t2:1,t3:1):1);", names_for(4));
  EXPECT_DOUBLE_EQ(fitch_score(good, data), 1.0);
  EXPECT_DOUBLE_EQ(fitch_score(bad, data), 2.0);
}

TEST(Parsimony, AmbiguityNeverForcesExtraChanges) {
  Alignment certain;
  certain.add_sequence("t0", string_to_codes("A"));
  certain.add_sequence("t1", string_to_codes("A"));
  certain.add_sequence("t2", string_to_codes("C"));
  certain.add_sequence("t3", string_to_codes("C"));
  Alignment fuzzy;
  fuzzy.add_sequence("t0", string_to_codes("A"));
  fuzzy.add_sequence("t1", string_to_codes("N"));
  fuzzy.add_sequence("t2", string_to_codes("C"));
  fuzzy.add_sequence("t3", string_to_codes("C"));
  const Tree tree =
      tree_from_newick("((t0:1,t1:1):1,(t2:1,t3:1):1);", names_for(4));
  EXPECT_LE(fitch_score(tree, PatternAlignment(fuzzy)),
            fitch_score(tree, PatternAlignment(certain)));
}

TEST(Parsimony, WeightsMultiplyScore) {
  Alignment alignment;
  alignment.add_sequence("t0", string_to_codes("AC"));
  alignment.add_sequence("t1", string_to_codes("AC"));
  alignment.add_sequence("t2", string_to_codes("CA"));
  alignment.add_sequence("t3", string_to_codes("CA"));
  const Tree tree =
      tree_from_newick("((t0:1,t1:1):1,(t2:1,t3:1):1);", names_for(4));
  const PatternAlignment weighted(alignment, {3, 2});
  EXPECT_DOUBLE_EQ(fitch_score(tree, weighted), 5.0);
}

TEST(Parsimony, SearchRecoversCleanSignal) {
  Rng rng(5);
  Tree truth = random_yule_tree(10, rng);
  SimulateOptions options;
  options.num_sites = 500;
  const Alignment alignment =
      simulate_alignment(truth, default_taxon_names(10), SubstModel::jc69(),
                         RateModel::uniform(), options, rng);
  const PatternAlignment data(alignment);
  ParsimonyOptions search_options;
  search_options.seed = 7;
  const ParsimonySearchResult result = parsimony_search(data, search_options);
  EXPECT_LE(robinson_foulds(result.tree, truth), 2);
  EXPECT_LE(result.score, fitch_score(truth, data) + 1e-9)
      << "search result must be at least as parsimonious as the true tree";
  EXPECT_GT(result.trees_scored, 50u);
}

TEST(Parsimony, SearchDeterministicForSeed) {
  Rng rng(5);
  Tree truth = random_yule_tree(8, rng);
  SimulateOptions options;
  options.num_sites = 200;
  const Alignment alignment =
      simulate_alignment(truth, default_taxon_names(8), SubstModel::jc69(),
                         RateModel::uniform(), options, rng);
  const PatternAlignment data(alignment);
  ParsimonyOptions search_options;
  search_options.seed = 11;
  const auto a = parsimony_search(data, search_options);
  const auto b = parsimony_search(data, search_options);
  EXPECT_DOUBLE_EQ(a.score, b.score);
  EXPECT_EQ(robinson_foulds(a.tree, b.tree), 0);
}

// --- NJ ---

TEST(NeighborJoining, RecoversAdditiveDistancesExactly) {
  // A perfectly additive matrix from a known tree must be reconstructed
  // exactly, including branch lengths (NJ is consistent on additive input).
  const auto names = names_for(5);
  const Tree truth = tree_from_newick(
      "((t0:0.2,t1:0.3):0.15,(t2:0.25,t3:0.1):0.2,t4:0.4);", names);
  // Path-length matrix.
  std::vector<std::vector<double>> d(5, std::vector<double>(5, 0.0));
  for (int a = 0; a < 5; ++a) {
    for (int b = 0; b < 5; ++b) {
      if (a == b) continue;
      // BFS over the tree accumulating lengths.
      std::vector<std::pair<int, double>> stack{{a, 0.0}};
      std::vector<char> seen(static_cast<std::size_t>(truth.max_nodes()), 0);
      seen[static_cast<std::size_t>(a)] = 1;
      while (!stack.empty()) {
        const auto [node, dist] = stack.back();
        stack.pop_back();
        if (node == b) {
          d[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = dist;
          break;
        }
        for (int s = 0; s < 3; ++s) {
          const int nbr = truth.neighbor(node, s);
          if (nbr == Tree::kNoNode || seen[static_cast<std::size_t>(nbr)]) continue;
          seen[static_cast<std::size_t>(nbr)] = 1;
          stack.push_back({nbr, dist + truth.slot_length(node, s)});
        }
      }
    }
  }
  const Tree reconstructed = neighbor_joining(d, 5);
  EXPECT_EQ(robinson_foulds(reconstructed, truth), 0);
  EXPECT_NEAR(reconstructed.length(4, reconstructed.neighbor(4, 0)), 0.4, 1e-9);
}

TEST(NeighborJoining, RecoversSimulatedTopology) {
  Rng rng(13);
  Tree truth = random_yule_tree(12, rng);
  SimulateOptions options;
  options.num_sites = 2000;
  const Alignment alignment =
      simulate_alignment(truth, default_taxon_names(12), SubstModel::jc69(),
                         RateModel::uniform(), options, rng);
  const PatternAlignment data(alignment);
  const Tree nj = neighbor_joining(data);
  nj.check_valid();
  EXPECT_LE(robinson_foulds(nj, truth), 2);
}

TEST(NeighborJoining, DistanceMatrixProperties) {
  Rng rng(17);
  Tree truth = random_yule_tree(6, rng);
  SimulateOptions options;
  options.num_sites = 500;
  const Alignment alignment =
      simulate_alignment(truth, default_taxon_names(6), SubstModel::jc69(),
                         RateModel::uniform(), options, rng);
  const PatternAlignment data(alignment);
  const auto d = jc_distance_matrix(data);
  for (std::size_t a = 0; a < 6; ++a) {
    EXPECT_DOUBLE_EQ(d[a][a], 0.0);
    for (std::size_t b = 0; b < 6; ++b) {
      EXPECT_DOUBLE_EQ(d[a][b], d[b][a]);
      EXPECT_GE(d[a][b], 0.0);
      EXPECT_LE(d[a][b], 5.0);
    }
  }
}

TEST(NeighborJoining, SaturatedPairsAreCapped) {
  Alignment alignment;
  // Two maximally divergent rows plus two close ones.
  alignment.add_sequence("t0", string_to_codes("ACGTACGTACGTACGTACGT"));
  alignment.add_sequence("t1", string_to_codes("CGTACGTACGTACGTACGTA"));
  alignment.add_sequence("t2", string_to_codes("ACGTACGTACGTACGTACGA"));
  alignment.add_sequence("t3", string_to_codes("ACGAACGTACGTACGTACGT"));
  const PatternAlignment data(alignment);
  const auto d = jc_distance_matrix(data, 5.0);
  EXPECT_DOUBLE_EQ(d[0][1], 5.0) << "100% mismatch saturates";
  EXPECT_LT(d[0][2], 0.2);
  const Tree tree = neighbor_joining(data);
  tree.check_valid();
}

}  // namespace
}  // namespace fdml
