// Tests for the durable-state subsystem: framed records, the torn-file
// corpus, the generational checkpoint store, seeded filesystem fault
// injection, the foreman's task journal, and process-level crash recovery
// (master supervisor + foreman revival). The headline invariant throughout:
// for any seeded crash point, resuming produces bit-for-bit the same final
// tree as an uninterrupted run.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "comm/integrity.hpp"
#include "durable/checkpoint_store.hpp"
#include "durable/fault_vfs.hpp"
#include "durable/frame.hpp"
#include "durable/journal.hpp"
#include "durable/vfs.hpp"
#include "model/simulate.hpp"
#include "parallel/cluster.hpp"
#include "parallel/foreman.hpp"
#include "parallel/master.hpp"
#include "parallel/protocol.hpp"
#include "search/search.hpp"
#include "seq/fingerprint.hpp"
#include "util/packer.hpp"

namespace fdml {
namespace {

using std::chrono::milliseconds;

/// Fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("fdml_durable_" + tag + "_" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
  std::filesystem::path path;
};

std::vector<std::uint8_t> bytes_of(const std::string& text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

// --- frames ---

TEST(DurableFrame, EncodeDecodeRoundTrip) {
  DurableFrame frame;
  frame.kind = kFrameSearchCheckpoint;
  frame.fingerprint = 0xfeedfacecafebeefULL;
  frame.generation = 42;
  frame.payload = bytes_of("hello durable world");

  const auto encoded = encode_frame(frame);
  EXPECT_TRUE(looks_like_frame(encoded.data(), encoded.size()));

  std::size_t pos = 0;
  const auto back = decode_frame(encoded.data(), encoded.size(), pos);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(pos, encoded.size());
  EXPECT_EQ(back->kind, frame.kind);
  EXPECT_EQ(back->fingerprint, frame.fingerprint);
  EXPECT_EQ(back->generation, frame.generation);
  EXPECT_EQ(back->payload, frame.payload);
}

TEST(DurableFrame, DecodesConsecutiveFrames) {
  DurableFrame a, b;
  a.kind = kFrameJournalEntry;
  a.generation = 1;
  a.payload = bytes_of("first");
  b.kind = kFrameJournalEntry;
  b.generation = 2;
  b.payload = bytes_of("second, longer payload");

  auto stream = encode_frame(a);
  const auto second = encode_frame(b);
  stream.insert(stream.end(), second.begin(), second.end());

  std::size_t pos = 0;
  const auto first_back = decode_frame(stream.data(), stream.size(), pos);
  ASSERT_TRUE(first_back.has_value());
  EXPECT_EQ(first_back->payload, a.payload);
  const auto second_back = decode_frame(stream.data(), stream.size(), pos);
  ASSERT_TRUE(second_back.has_value());
  EXPECT_EQ(second_back->payload, b.payload);
  EXPECT_EQ(pos, stream.size());
}

// The torn-file corpus (ISSUE satellite): truncate the file at EVERY byte
// boundary and corrupt EVERY single byte; the loader must reject each
// mutation with nullopt and never crash (this suite also runs under ASan).
TEST(DurableFrame, TornFileCorpusNeverCrashesTheLoader) {
  DurableFrame frame;
  frame.kind = kFrameSearchCheckpoint;
  frame.fingerprint = 7;
  frame.generation = 3;
  frame.payload = bytes_of("payload under attack");
  const auto encoded = encode_frame(frame);

  // Every truncation length except the full file is invalid.
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    std::size_t pos = 0;
    EXPECT_FALSE(decode_frame(encoded.data(), cut, pos).has_value())
        << "truncation at byte " << cut << " decoded";
    EXPECT_EQ(pos, 0u);
  }

  // Every single-byte corruption is caught: each byte is covered by the
  // magic check, a header sanity check, or the trailing digest.
  for (std::size_t at = 0; at < encoded.size(); ++at) {
    auto corrupt = encoded;
    corrupt[at] ^= 0x20;
    std::size_t pos = 0;
    EXPECT_FALSE(decode_frame(corrupt.data(), corrupt.size(), pos).has_value())
        << "flipping byte " << at << " went undetected";
  }

  // Declared payload size larger than the buffer must not read past the end.
  auto oversize = encoded;
  oversize[32] = 0xff;  // payload-size field, little-endian low byte
  std::size_t pos = 0;
  EXPECT_FALSE(decode_frame(oversize.data(), oversize.size(), pos).has_value());
}

TEST(DurableFrame, FrameFileRejectsTrailingGarbageAndMissing) {
  ScratchDir dir("framefile");
  const std::string path = dir.file("one.frame");
  DurableFrame frame;
  frame.kind = kFrameSearchCheckpoint;
  frame.payload = bytes_of("x");
  write_frame_file_atomic(real_vfs(), path, frame);
  ASSERT_TRUE(read_frame_file(real_vfs(), path).has_value());

  const std::uint8_t junk = 0xab;
  real_vfs().append_file(path, &junk, 1);
  EXPECT_FALSE(read_frame_file(real_vfs(), path).has_value());
  EXPECT_FALSE(read_frame_file(real_vfs(), dir.file("missing")).has_value());
}

// --- checkpoint store ---

TEST(CheckpointStore, KeepsLastGenerationsAndBaseCopy) {
  ScratchDir dir("store");
  const std::string base = dir.file("run.ckpt");
  CheckpointStore store(base, {.keep = 3});

  for (int i = 1; i <= 5; ++i) {
    const auto generation = store.commit(kFrameSearchCheckpoint, 99,
                                         bytes_of("gen " + std::to_string(i)));
    EXPECT_EQ(generation, static_cast<std::uint64_t>(i));
  }

  EXPECT_FALSE(real_vfs().exists(base + ".gen-1"));
  EXPECT_FALSE(real_vfs().exists(base + ".gen-2"));
  EXPECT_TRUE(real_vfs().exists(base + ".gen-3"));
  EXPECT_TRUE(real_vfs().exists(base + ".gen-5"));
  // The base path still holds a loadable copy of the newest generation
  // (compat with tools that predate the store).
  const auto at_base = read_frame_file(real_vfs(), base);
  ASSERT_TRUE(at_base.has_value());
  EXPECT_EQ(at_base->generation, 5u);

  const auto recovered = store.recover(99);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->generation, 5u);
  EXPECT_EQ(recovered->frame.payload, bytes_of("gen 5"));
}

TEST(CheckpointStore, RollsBackPastACorruptNewestGeneration) {
  ScratchDir dir("rollback");
  CheckpointStore store(dir.file("run.ckpt"), {.keep = 3});
  store.commit(kFrameSearchCheckpoint, 7, bytes_of("good"));
  store.commit(kFrameSearchCheckpoint, 7, bytes_of("doomed"));

  // Corrupt generation 2 AND the base copy: recovery must roll back to 1.
  for (const std::string path :
       {dir.file("run.ckpt.gen-2"), dir.file("run.ckpt")}) {
    auto bytes = *real_vfs().read_file(path);
    bytes[bytes.size() / 2] ^= 0xff;
    real_vfs().write_file(path, bytes.data(), bytes.size());
  }

  const auto recovered = store.recover(7);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->generation, 1u);
  EXPECT_EQ(recovered->frame.payload, bytes_of("good"));

  // The unreadable generation's number is never reused.
  EXPECT_EQ(store.commit(kFrameSearchCheckpoint, 7, bytes_of("next")), 3u);
}

TEST(CheckpointStore, RefusesACheckpointFromAnotherDataset) {
  ScratchDir dir("foreign");
  CheckpointStore store(dir.file("run.ckpt"), {});
  store.commit(kFrameSearchCheckpoint, 1111, bytes_of("theirs"));
  try {
    store.recover(2222);
    FAIL() << "foreign checkpoint accepted";
  } catch (const FingerprintMismatchError& error) {
    EXPECT_EQ(error.expected(), 2222u);
    EXPECT_EQ(error.found(), 1111u);
    // The message must name both sides of the disagreement.
    EXPECT_NE(std::string(error.what()).find("1111"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("2222"), std::string::npos);
  }
  EXPECT_TRUE(store.recover(0).has_value()) << "0 must accept any fingerprint";
}

// --- filesystem fault injection ---

TEST(FaultVfs, ErrorFaultsSurfaceAndLeaveNoState) {
  ScratchDir dir("eio");
  FaultPlan plan;
  plan.seed = 11;
  plan.fs_error = 1.0;
  FaultVfs vfs(real_vfs(), plan);
  CheckpointStore store(dir.file("run.ckpt"), {}, &vfs);
  EXPECT_THROW(store.commit(kFrameSearchCheckpoint, 1, bytes_of("x")),
               std::system_error);
  EXPECT_FALSE(store.recover(0).has_value());
}

TEST(FaultVfs, ShortWritesAreDetectedByRecovery) {
  ScratchDir dir("enospc");
  FaultPlan plan;
  plan.seed = 13;
  plan.fs_short_write = 1.0;
  FaultVfs vfs(real_vfs(), plan);
  CheckpointStore store(dir.file("run.ckpt"), {}, &vfs);
  EXPECT_THROW(store.commit(kFrameSearchCheckpoint, 1, bytes_of("payload")),
               std::system_error);
  // Whatever prefix reached the disk must not recover as a checkpoint.
  EXPECT_FALSE(store.recover(0).has_value());
}

// Crash at EVERY mutating filesystem op of a commit sequence; after each
// simulated kill -9, recovery must return a fully intact checkpoint no
// older than the last commit() that returned success.
TEST(FaultVfs, CrashAtEveryOpAlwaysRecoversAnIntactCheckpoint) {
  const std::vector<std::vector<std::uint8_t>> payloads = {
      bytes_of("one"), bytes_of("two"), bytes_of("three"), bytes_of("four")};

  // Fault-free rehearsal to learn the op count.
  std::uint64_t total_ops = 0;
  {
    ScratchDir dir("rehearsal");
    FaultVfs vfs(real_vfs(), FaultPlan{});
    CheckpointStore store(dir.file("run.ckpt"), {.keep = 2}, &vfs);
    for (const auto& payload : payloads) {
      store.commit(kFrameSearchCheckpoint, 5, payload);
    }
    total_ops = vfs.mutating_ops();
  }
  ASSERT_GT(total_ops, 8u);

  for (std::uint64_t crash_at = 1; crash_at <= total_ops; ++crash_at) {
    ScratchDir dir("crash" + std::to_string(crash_at));
    FaultPlan plan;
    plan.seed = 1000 + crash_at;
    plan.fs_crash_at_op = crash_at;
    FaultVfs vfs(real_vfs(), plan);
    CheckpointStore store(dir.file("run.ckpt"), {.keep = 2}, &vfs);

    std::size_t committed = 0;
    try {
      for (const auto& payload : payloads) {
        store.commit(kFrameSearchCheckpoint, 5, payload);
        ++committed;
      }
    } catch (const DurableCrash&) {
    }
    ASSERT_TRUE(vfs.crashed());
    ASSERT_LT(committed, payloads.size());

    // Post-mortem through the REAL filesystem: whatever the crash left
    // behind, recovery returns an intact committed payload.
    CheckpointStore survivor(dir.file("run.ckpt"), {.keep = 2});
    const auto recovered = survivor.recover(5);
    if (committed == 0 && !recovered.has_value()) continue;  // nothing yet
    ASSERT_TRUE(recovered.has_value())
        << "crash at op " << crash_at << " lost " << committed
        << " acknowledged commit(s)";
    ASSERT_GE(recovered->generation, committed)
        << "crash at op " << crash_at << " rolled back an acknowledged commit";
    ASSERT_LE(recovered->generation, payloads.size());
    EXPECT_EQ(recovered->frame.payload, payloads[recovered->generation - 1])
        << "crash at op " << crash_at << " recovered a torn payload";
  }
}

// --- task journal ---

TEST(TaskJournal, AppendLoadFindRoundTrip) {
  ScratchDir dir("journal");
  const std::string path = dir.file("tasks.journal");
  const std::uint64_t d1 = task_content_digest("(a,b,c);", 2, 8);
  const std::uint64_t d2 = task_content_digest("(a,c,b);", 2, 8);
  const std::uint64_t round = round_content_key({d1, d2});
  EXPECT_NE(d1, d2);

  {
    TaskJournal journal(path);
    journal.reset();
    journal.append({round, d1, -100.5, "(a:1,b:1,c:1);", 0.25});
    journal.append({round, d2, -99.25, "(a:1,c:1,b:1);", 0.5});
  }

  TaskJournal reloaded(path);
  EXPECT_EQ(reloaded.load(), 2u);
  const JournalEntry* hit = reloaded.find(round, d2);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->log_likelihood, -99.25);
  EXPECT_EQ(hit->newick, "(a:1,c:1,b:1);");
  EXPECT_EQ(reloaded.find(round, 12345u), nullptr);
  EXPECT_EQ(reloaded.find(777u, d1), nullptr);

  reloaded.reset();
  EXPECT_EQ(TaskJournal(path).load(), 0u);
}

TEST(TaskJournal, ToleratesATornTail) {
  ScratchDir dir("torn_tail");
  const std::string path = dir.file("tasks.journal");
  const std::uint64_t round = round_content_key({1, 2, 3});
  TaskJournal journal(path);
  journal.reset();
  journal.append({round, 1, -1.0, "(a);", 0.1});
  journal.append({round, 2, -2.0, "(b);", 0.1});
  journal.append({round, 3, -3.0, "(c);", 0.1});

  // A crash mid-append leaves a torn last frame: drop its final 5 bytes.
  auto bytes = *real_vfs().read_file(path);
  bytes.resize(bytes.size() - 5);
  real_vfs().write_file(path, bytes.data(), bytes.size());

  TaskJournal survivor(path);
  EXPECT_EQ(survivor.load(), 2u) << "exactly the torn entry is lost";
  EXPECT_NE(survivor.find(round, 2), nullptr);
  EXPECT_EQ(survivor.find(round, 3), nullptr);

  // Appending after the torn load extends the journal usably.
  survivor.append({round, 3, -3.0, "(c);", 0.1});
  EXPECT_EQ(survivor.size(), 3u);
}

// --- search checkpoint durability ---

struct SearchFixture {
  SearchFixture()
      : alignment(make_paper_like_dataset(8, 120, 5)), data(alignment) {}
  Alignment alignment;
  PatternAlignment data;
};

TEST(DurableSearch, AlignmentFingerprintSeparatesDatasets) {
  SearchFixture fx;
  const PatternAlignment other(make_paper_like_dataset(8, 120, 6));
  EXPECT_EQ(alignment_fingerprint(fx.data), alignment_fingerprint(fx.data));
  EXPECT_NE(alignment_fingerprint(fx.data), alignment_fingerprint(other));
}

TEST(DurableSearch, SaveFileSurfacesIoFailure) {
  ScratchDir dir("savefail");
  SearchCheckpoint checkpoint;
  checkpoint.addition_order = {0, 1, 2};
  checkpoint.next_order_index = 3;
  checkpoint.tree_newick = "(a:1,b:1,c:1);";
  FaultPlan plan;
  plan.fs_error = 1.0;
  FaultVfs vfs(real_vfs(), plan);
  EXPECT_THROW(checkpoint.save_file(dir.file("ckpt"), &vfs),
               std::system_error);

  checkpoint.save_file(dir.file("ckpt"));  // the real filesystem works
  const SearchCheckpoint back = SearchCheckpoint::load_file(dir.file("ckpt"));
  EXPECT_EQ(back.tree_newick, checkpoint.tree_newick);
}

TEST(DurableSearch, RecoverCheckpointChecksTheDatasetFingerprint) {
  SearchFixture fx;
  ScratchDir dir("fp_check");
  const std::string path = dir.file("run.ckpt");
  const std::uint64_t fingerprint = alignment_fingerprint(fx.data);

  SerialTaskRunner runner(fx.data, SubstModel::jc69(), RateModel::uniform());
  SearchOptions options;
  options.seed = 9;
  options.checkpoint_path = path;
  options.dataset_fingerprint = fingerprint;
  StepwiseSearch(fx.data, options).run(runner);

  const auto recovered = recover_checkpoint(path, fingerprint);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->checkpoint.dataset_fingerprint, fingerprint);
  EXPECT_EQ(recovered->checkpoint.next_order_index, 8);
  EXPECT_GT(recovered->generation, 0u);

  EXPECT_THROW(recover_checkpoint(path, fingerprint + 1),
               FingerprintMismatchError);
  EXPECT_TRUE(recover_checkpoint(path, 0).has_value());
  EXPECT_FALSE(recover_checkpoint(dir.file("absent"), 0).has_value());
}

TEST(DurableSearch, StopRequestCommitsThenInterrupts) {
  SearchFixture fx;
  ScratchDir dir("stop");
  SerialTaskRunner runner(fx.data, SubstModel::jc69(), RateModel::uniform());
  SearchOptions options;
  options.seed = 9;
  options.checkpoint_path = dir.file("run.ckpt");
  options.dataset_fingerprint = alignment_fingerprint(fx.data);
  options.stop_requested = [] { return true; };  // "SIGINT" immediately

  std::uint64_t generation = 0;
  try {
    StepwiseSearch(fx.data, options).run(runner);
    FAIL() << "stop request ignored";
  } catch (const SearchInterrupted& interrupted) {
    generation = interrupted.generation();
  }
  EXPECT_GT(generation, 0u);
  // The interrupting checkpoint is durable and resumable.
  const auto recovered =
      recover_checkpoint(options.checkpoint_path, options.dataset_fingerprint);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->generation, generation);
}

// The headline invariant, in-process: crash the search at EVERY mutating
// filesystem op of its checkpoint stream, recover, resume, and require the
// exact final tree and likelihood of the uninterrupted run.
TEST(DurableSearch, CrashAtEveryOpResumesToTheIdenticalResult) {
  SearchFixture fx;
  SerialTaskRunner runner(fx.data, SubstModel::jc69(), RateModel::uniform());
  const std::uint64_t fingerprint = alignment_fingerprint(fx.data);

  SearchOptions base_options;
  base_options.seed = 9;
  base_options.dataset_fingerprint = fingerprint;

  // Reference: uninterrupted, no checkpointing at all.
  const SearchResult reference =
      StepwiseSearch(fx.data, base_options).run(runner);

  // Rehearsal with checkpoints through a fault-free FaultVfs: op count.
  std::uint64_t total_ops = 0;
  {
    ScratchDir dir("rehearsal");
    FaultVfs vfs(real_vfs(), FaultPlan{});
    SearchOptions options = base_options;
    options.checkpoint_path = dir.file("run.ckpt");
    options.vfs = &vfs;
    const SearchResult checkpointed =
        StepwiseSearch(fx.data, options).run(runner);
    EXPECT_EQ(checkpointed.best_newick, reference.best_newick)
        << "checkpointing must not perturb the search";
    total_ops = vfs.mutating_ops();
  }
  ASSERT_GT(total_ops, 20u) << "expected many commit points to crash at";

  for (std::uint64_t crash_at = 1; crash_at <= total_ops; ++crash_at) {
    ScratchDir dir("op" + std::to_string(crash_at));
    const std::string path = dir.file("run.ckpt");
    FaultPlan plan;
    plan.seed = 4000 + crash_at;
    plan.fs_crash_at_op = crash_at;
    FaultVfs vfs(real_vfs(), plan);

    SearchOptions crashing = base_options;
    crashing.checkpoint_path = path;
    crashing.vfs = &vfs;
    bool crashed = false;
    try {
      StepwiseSearch(fx.data, crashing).run(runner);
    } catch (const DurableCrash&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << "op " << crash_at << " never executed";

    // "Process restart": recover through the real filesystem and resume.
    SearchResult final_result;
    const auto recovered = recover_checkpoint(path, fingerprint);
    SearchOptions resuming = base_options;
    resuming.checkpoint_path = path;  // keep checkpointing while resumed
    if (recovered.has_value()) {
      final_result = StepwiseSearch(fx.data, resuming)
                         .resume(runner, recovered->checkpoint);
    } else {
      // Crashed before anything durable: a fresh run must still match.
      final_result = StepwiseSearch(fx.data, resuming).run(runner);
    }

    EXPECT_EQ(final_result.best_newick, reference.best_newick)
        << "crash at op " << crash_at << " changed the final tree";
    EXPECT_DOUBLE_EQ(final_result.best_log_likelihood,
                     reference.best_log_likelihood)
        << "crash at op " << crash_at << " changed the final likelihood";
  }
}

// --- foreman journal replay (scripted fabric) ---

void script_hello(Transport& worker) {
  worker.send(kForemanRank, MessageTag::kHello, {});
}

void script_round(Transport& master, std::uint64_t round_id,
                  std::vector<std::pair<std::uint64_t, std::string>> tasks) {
  RoundMessage round;
  round.round_id = round_id;
  for (auto& [id, newick] : tasks) {
    TreeTask task;
    task.task_id = id;
    task.round_id = round_id;
    task.newick = newick;
    round.tasks.push_back(task);
  }
  auto payload = round.pack();
  seal_payload(payload);
  master.send(kForemanRank, MessageTag::kRound, std::move(payload));
}

std::optional<TreeTask> script_recv_task(Transport& worker,
                                         milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto remaining = std::chrono::duration_cast<milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return std::nullopt;
    auto message = worker.recv_for(remaining);
    if (!message.has_value()) return std::nullopt;
    if (message->tag != MessageTag::kTask) continue;  // pings, shutdowns
    if (!open_payload(message->payload)) return std::nullopt;
    Unpacker unpacker(message->payload);
    return TreeTask::unpack(unpacker);
  }
}

void script_result(Transport& worker, const TreeTask& task,
                   double log_likelihood) {
  TaskResult result;
  result.task_id = task.task_id;
  result.round_id = task.round_id;
  result.log_likelihood = log_likelihood;
  result.newick = task.newick;
  Packer packer;
  result.pack(packer);
  auto payload = packer.take();
  seal_payload(payload);
  worker.send(kForemanRank, MessageTag::kResult, std::move(payload));
}

std::optional<RoundDoneMessage> script_round_done(Transport& master,
                                                  milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto remaining = std::chrono::duration_cast<milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return std::nullopt;
    auto message = master.recv_for(remaining);
    if (!message.has_value()) return std::nullopt;
    if (message->tag != MessageTag::kRoundDone) continue;
    if (!open_payload(message->payload)) return std::nullopt;
    return RoundDoneMessage::unpack(message->payload);
  }
}

bool script_await_ping(Transport& worker, milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto remaining = std::chrono::duration_cast<milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return false;
    auto message = worker.recv_for(remaining);
    if (!message.has_value()) return false;
    if (message->tag == MessageTag::kPing) return true;
  }
}

// A revived foreman replays the dead incarnation's journal: the same round
// content, re-sent under fresh ids, completes without dispatching a single
// task to a worker.
TEST(ForemanJournal, RevivedForemanReplaysInsteadOfRedispatching) {
  ScratchDir dir("replay");
  ThreadFabric fabric(4);
  ForemanOptions options;
  options.notify_monitor = false;
  options.journal_path = dir.file("tasks.journal");

  auto master = fabric.endpoint(kMasterRank);
  auto worker = fabric.endpoint(kFirstWorkerRank);

  // Incarnation 1: evaluates the round for real and journals both results.
  ForemanStats first_stats;
  {
    auto endpoint = fabric.endpoint(kForemanRank);
    std::thread foreman(
        [&] { first_stats = foreman_main(*endpoint, options); });
    script_hello(*worker);
    script_round(*master, 1, {{1, "(a:1,b:1,c:1);"}, {2, "(a:1,c:1,b:1);"}});
    for (int i = 0; i < 2; ++i) {
      auto task = script_recv_task(*worker, milliseconds(2000));
      ASSERT_TRUE(task.has_value());
      script_result(*worker, *task, -60.0 - static_cast<double>(task->task_id));
    }
    ASSERT_TRUE(script_round_done(*master, milliseconds(2000)).has_value());
    master->send(kForemanRank, MessageTag::kShutdown, {});
    foreman.join();
  }
  EXPECT_EQ(first_stats.journal_appended, 2u);
  EXPECT_EQ(first_stats.journal_replayed, 0u);

  // Incarnation 2: journal_resume + ping, as revive_foreman() configures it.
  ForemanOptions revived = options;
  revived.journal_resume = true;
  revived.announce_ping = true;
  ForemanStats second_stats;
  {
    auto endpoint = fabric.endpoint(kForemanRank);
    std::thread foreman(
        [&] { second_stats = foreman_main(*endpoint, revived); });
    ASSERT_TRUE(script_await_ping(*worker, milliseconds(2000)))
        << "a revived foreman must ping for workers";
    script_hello(*worker);
    // Same content, renumbered — the journal is content-addressed.
    script_round(*master, 9,
                 {{31, "(a:1,b:1,c:1);"}, {32, "(a:1,c:1,b:1);"}});
    const auto done = script_round_done(*master, milliseconds(2000));
    ASSERT_TRUE(done.has_value());
    EXPECT_DOUBLE_EQ(done->best.log_likelihood, -61.0);
    // No task may reach the worker: everything came from the journal.
    EXPECT_FALSE(script_recv_task(*worker, milliseconds(100)).has_value());
    master->send(kForemanRank, MessageTag::kShutdown, {});
    foreman.join();
  }
  EXPECT_EQ(second_stats.journal_replayed, 2u);
  EXPECT_EQ(second_stats.tasks_dispatched, 0u);
  EXPECT_EQ(second_stats.tasks_completed, 2u);
}

// --- master supervisor ---

TEST(MasterSupervisor, ExhaustedRetriesRaiseRunFailedError) {
  ThreadFabric fabric(4);  // nobody home at the foreman rank
  auto endpoint = fabric.endpoint(kMasterRank);
  MasterOptions options;
  options.watchdog_timeout = milliseconds(80);
  options.retry_backoff = milliseconds(5);
  options.max_round_retries = 1;
  options.serial_fallback = false;
  ParallelMaster master(*endpoint, 1, options);

  int revival_calls = 0;
  master.set_reviver([&] {
    ++revival_calls;
    return false;  // nothing to revive; the fabric stays dead
  });

  TreeTask task;
  task.task_id = 1;
  task.newick = "(a:1,b:1,c:1);";
  try {
    master.run_round({task});
    FAIL() << "a dead fabric completed a round";
  } catch (const RunFailedError& failure) {
    EXPECT_EQ(failure.attempts(), 2);
    EXPECT_NE(std::string(failure.what()).find("watchdog"), std::string::npos);
  }
  EXPECT_EQ(revival_calls, 1);
  EXPECT_EQ(master.stats().round_retries, 1u);
  EXPECT_EQ(master.stats().watchdog_trips, 2u);
}

// --- whole-cluster crash recovery ---

// Kill the foreman thread mid-run with seeded chaos; the master's
// supervisor revives it, the journal absorbs the replayed work, and the
// finished run is identical to a run on a healthy cluster.
TEST(ClusterRecovery, ForemanDeathMidRunRecoversToTheIdenticalResult) {
  SearchFixture fx;
  ScratchDir dir("cluster");
  const SubstModel model = SubstModel::jc69();
  const RateModel rates = RateModel::uniform();

  SearchOptions search_options;
  search_options.seed = 9;

  SearchResult healthy;
  {
    ClusterOptions options;
    options.num_workers = 2;
    InProcessCluster cluster(fx.data, model, rates, options);
    healthy = StepwiseSearch(fx.data, search_options).run(cluster.runner());
    cluster.shutdown();
  }

  ClusterOptions options;
  options.num_workers = 2;
  options.foreman.journal_path = dir.file("tasks.journal");
  options.master.watchdog_timeout = milliseconds(1000);
  options.master.retry_backoff = milliseconds(20);
  options.master.max_round_retries = 3;
  FaultPlan chaos;
  chaos.seed = 21;
  chaos.crash_after_sends = 6;  // the first incarnation dies early
  options.chaos_foreman = chaos;

  InProcessCluster cluster(fx.data, model, rates, options);
  const SearchResult recovered =
      StepwiseSearch(fx.data, search_options).run(cluster.runner());
  cluster.shutdown();

  EXPECT_GE(cluster.foreman_revivals(), 1);
  EXPECT_GE(cluster.master_stats().fabric_revivals, 1u);
  EXPECT_EQ(cluster.master_stats().serial_fallbacks, 0u)
      << "recovery must come from revival, not the serial fallback";
  EXPECT_EQ(recovered.best_newick, healthy.best_newick);
  EXPECT_DOUBLE_EQ(recovered.best_log_likelihood, healthy.best_log_likelihood);
}

}  // namespace
}  // namespace fdml
