// Backend-parity tests for the SIMD kernel layer.
//
// The determinism contract (util/simd.hpp) says every backend performs the
// same unfused arithmetic in the same order per pattern, so scalar, SSE2
// and AVX2 must agree not "approximately" but to within 2 ulps (and in
// practice bit-exactly). These tests drive every backend compiled into the
// binary — once at the KernelTable level on synthetic planes, and once
// end-to-end through LikelihoodEngine on randomized alignments with
// degenerate (gap-only) columns and rescaling-heavy deep trees — and
// compare against the scalar backend, which is always present.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "fdml.hpp"
#include "likelihood/kernels.hpp"
#include "util/aligned.hpp"
#include "util/simd.hpp"

namespace {

using namespace fdml;

// Monotonic mapping of doubles onto uint64 so ulp distance is a subtraction.
std::uint64_t ordered_bits(double x) {
  const std::uint64_t b = std::bit_cast<std::uint64_t>(x);
  const std::uint64_t sign = 0x8000000000000000ull;
  return (b & sign) ? ~b : (b | sign);
}

std::uint64_t ulp_distance(double a, double b) {
  if (a == b) return 0;
  if (!std::isfinite(a) || !std::isfinite(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  const std::uint64_t ka = ordered_bits(a);
  const std::uint64_t kb = ordered_bits(b);
  return ka > kb ? ka - kb : kb - ka;
}

#define EXPECT_ULP_EQ(a, b)                                               \
  EXPECT_LE(ulp_distance((a), (b)), 2u)                                   \
      << "values " << (a) << " vs " << (b)

// Pins the exact kernel tier for the test scope (parity is only promised
// for exact-tier tables) and restores automatic backend/tier selection when
// the scope ends, even on assertion failure.
struct BackendGuard {
  BackendGuard() { simd::set_tier("exact"); }
  ~BackendGuard() {
    simd::set_backend("auto");
    simd::set_tier("auto");
  }
};

std::vector<const KernelTable*> usable_vector_tables() {
  std::vector<const KernelTable*> tables;
  for (const KernelTable* t : compiled_kernel_tables()) {
    if (t->backend != simd::Backend::kScalar &&
        simd::cpu_supports(t->backend)) {
      tables.push_back(t);
    }
  }
  return tables;
}

TEST(Simd, AlignedVectorIsKernelAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedVector<double> v(n, 1.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kKernelAlignment, 0u);
  }
}

TEST(Simd, BackendSelection) {
  BackendGuard guard;
  const auto compiled = simd::compiled_backends();
  ASSERT_FALSE(compiled.empty());
  EXPECT_EQ(compiled.front(), simd::Backend::kScalar);
  EXPECT_TRUE(simd::cpu_supports(simd::Backend::kScalar));

  EXPECT_TRUE(simd::set_backend("scalar"));
  EXPECT_EQ(simd::active_backend(), simd::Backend::kScalar);
  EXPECT_STREQ(active_kernel_table().name, "scalar");
  EXPECT_EQ(active_kernel_table().width, 1);

  EXPECT_FALSE(simd::set_backend("avx1024"));  // unknown name
  EXPECT_EQ(simd::active_backend(), simd::Backend::kScalar);  // unchanged

  // avx512 is a known name; selecting it succeeds exactly when the TU is
  // compiled in AND the CPU has avx512f+dq.
  const bool avx512_compiled =
      std::find(compiled.begin(), compiled.end(), simd::Backend::kAvx512) !=
      compiled.end();
  const bool avx512_usable =
      avx512_compiled && simd::cpu_supports(simd::Backend::kAvx512);
  EXPECT_EQ(simd::set_backend("avx512"), avx512_usable);
  if (avx512_usable) {
    EXPECT_EQ(simd::active_backend(), simd::Backend::kAvx512);
    EXPECT_TRUE(simd::backend_pinned());
    EXPECT_STREQ(active_kernel_table().name, "avx512");
    EXPECT_EQ(active_kernel_table().width, 8);
  }

  EXPECT_TRUE(simd::set_backend("auto"));
  for (const KernelTable* t : compiled_kernel_tables()) {
    EXPECT_EQ(simd::width(t->backend), t->width);
    EXPECT_STREQ(simd::backend_name(t->backend), t->name);
  }
}

// ---------------------------------------------------------------------------
// KernelTable-level parity on synthetic planes
// ---------------------------------------------------------------------------

struct SyntheticPlanes {
  static constexpr std::size_t kPadded = 64;
  static constexpr std::size_t kPlane = 4 * kPadded;

  AlignedVector<double> a;
  AlignedVector<double> b;
  std::vector<std::uint8_t> codes_a, codes_b;
  Mat4 pa{}, pb{};
  double tab_a[64], tab_b[64];
  Mat4 pr{};
  const Mat4* left;
  double e[4], lam[4];

  SyntheticPlanes() {
    Rng rng(7);
    a.resize(kPlane);
    b.resize(kPlane);
    for (auto& x : a) x = rng.uniform(0.01, 1.0);
    for (auto& x : b) x = rng.uniform(0.01, 1.0);
    codes_a.resize(kPadded);
    codes_b.resize(kPadded);
    for (std::size_t p = 0; p < kPadded; ++p) {
      codes_a[p] = static_cast<std::uint8_t>(rng.range(1, 15));
      codes_b[p] = static_cast<std::uint8_t>(rng.range(1, 15));
    }
    const SubstModel model = SubstModel::hky85({0.3, 0.2, 0.2, 0.3}, 2.5);
    model.transition(0.07, pa);
    model.transition(0.23, pb);
    for (int s = 0; s < 4; ++s) {
      for (int code = 0; code < 16; ++code) {
        double ta = 0.0, tb = 0.0;
        for (int j = 0; j < 4; ++j) {
          if ((code >> j) & 1) {
            ta += pa[s][j];
            tb += pb[s][j];
          }
        }
        tab_a[s * 16 + code] = ta;
        tab_b[s * 16 + code] = tb;
      }
    }
    const Vec4& pi = model.frequencies();
    const Mat4& right = model.right_eigenvectors();
    left = &model.left_eigenvectors();
    for (int k = 0; k < 4; ++k) {
      for (int i = 0; i < 4; ++i) pr[k][i] = pi[i] * right[i][k];
      lam[k] = model.eigenvalues()[k];
      e[k] = std::exp(lam[k] * 0.17);
    }
    // The model object dies here; left would dangle. Copy it.
    left_copy = model.left_eigenvectors();
    left = &left_copy;
  }
  Mat4 left_copy{};
};

TEST(Simd, ClvCombineMatchesScalarBitExactly) {
  const SyntheticPlanes s;
  const KernelTable* scalar = kernel_table(simd::Backend::kScalar);
  ASSERT_NE(scalar, nullptr);

  // All four child-kind combinations: internal x internal, tip x internal,
  // internal x tip, tip x tip.
  for (int mode = 0; mode < 4; ++mode) {
    ClvOperand a, b;
    a.planes = s.a.data();
    b.planes = s.b.data();
    if (mode & 1) {
      a.codes = s.codes_a.data();
      a.tip_tab = s.tab_a;
    } else {
      a.p = &s.pa[0][0];
    }
    if (mode & 2) {
      b.codes = s.codes_b.data();
      b.tip_tab = s.tab_b;
    } else {
      b.p = &s.pb[0][0];
    }
    AlignedVector<double> ref(SyntheticPlanes::kPlane, -1.0);
    scalar->clv_combine(0, SyntheticPlanes::kPadded, SyntheticPlanes::kPadded,
                        a, b, ref.data());
    for (const KernelTable* table : usable_vector_tables()) {
      AlignedVector<double> out(SyntheticPlanes::kPlane, -2.0);
      table->clv_combine(0, SyntheticPlanes::kPadded,
                         SyntheticPlanes::kPadded, a, b, out.data());
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(ref[i], out[i])
            << table->name << " mode " << mode << " index " << i;
      }
    }
  }
}

TEST(Simd, ClvRescaleMatchesScalar) {
  constexpr std::size_t padded = 32;
  constexpr std::size_t cats = 2;
  // Patterns 3 and 10: genuinely underflowing. Pattern 17: exactly zero
  // (gap-only / padded-tail case) — must NOT be rescaled. Others: normal.
  AlignedVector<double> base(cats * 4 * padded);
  Rng rng(23);
  for (auto& x : base) x = rng.uniform(0.1, 1.0);
  for (std::size_t cat = 0; cat < cats; ++cat) {
    for (int st = 0; st < 4; ++st) {
      double* plane = base.data() + (cat * 4 + st) * padded;
      plane[3] = 1e-80;   // < 2^-256 ~ 1.16e-77
      plane[10] = 5e-79;
      plane[17] = 0.0;
    }
  }
  std::vector<std::int32_t> a_scale(padded, 0), b_scale(padded, 0);
  a_scale[1] = 2;
  b_scale[3] = 1;

  const KernelTable* scalar = kernel_table(simd::Backend::kScalar);
  AlignedVector<double> ref_values = base;
  std::vector<std::int32_t> ref_scale(padded, -1);
  const std::uint64_t ref_rescued =
      scalar->clv_rescale(0, padded, padded, cats, ref_values.data(),
                          a_scale.data(), b_scale.data(), ref_scale.data());
  EXPECT_EQ(ref_rescued, 2u);
  EXPECT_EQ(ref_scale[1], 2);   // child scales combined
  EXPECT_EQ(ref_scale[3], 2);   // 1 inherited + 1 new
  EXPECT_EQ(ref_scale[10], 1);
  EXPECT_EQ(ref_scale[17], 0);  // zero pattern untouched
  EXPECT_EQ(ref_values[3], 1e-80 * 0x1.0p+256);

  for (const KernelTable* table : usable_vector_tables()) {
    AlignedVector<double> values = base;
    std::vector<std::int32_t> scale(padded, -1);
    const std::uint64_t rescued =
        table->clv_rescale(0, padded, padded, cats, values.data(),
                           a_scale.data(), b_scale.data(), scale.data());
    EXPECT_EQ(rescued, ref_rescued) << table->name;
    for (std::size_t p = 0; p < padded; ++p) {
      ASSERT_EQ(scale[p], ref_scale[p]) << table->name << " pattern " << p;
    }
    for (std::size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(values[i], ref_values[i]) << table->name << " index " << i;
    }
  }
}

TEST(Simd, EdgeKernelsMatchScalarBitExactly) {
  const SyntheticPlanes s;
  const KernelTable* scalar = kernel_table(simd::Backend::kScalar);

  AlignedVector<double> ref_coeff(SyntheticPlanes::kPlane);
  scalar->edge_capture(SyntheticPlanes::kPadded, s.a.data(), s.b.data(),
                       &s.pr[0][0], &(*s.left)[0][0], 0.25, ref_coeff.data());
  AlignedVector<double> ref_site(SyntheticPlanes::kPadded),
      ref_d1(SyntheticPlanes::kPadded), ref_d2(SyntheticPlanes::kPadded);
  scalar->edge_evaluate(SyntheticPlanes::kPadded, ref_coeff.data(), s.e, s.lam,
                        /*accumulate=*/false, /*derivs=*/true, ref_site.data(),
                        ref_d1.data(), ref_d2.data());
  // Accumulation pass on top (multi-category path).
  scalar->edge_evaluate(SyntheticPlanes::kPadded, ref_coeff.data(), s.e, s.lam,
                        /*accumulate=*/true, /*derivs=*/true, ref_site.data(),
                        ref_d1.data(), ref_d2.data());

  for (const KernelTable* table : usable_vector_tables()) {
    AlignedVector<double> coeff(SyntheticPlanes::kPlane);
    table->edge_capture(SyntheticPlanes::kPadded, s.a.data(), s.b.data(),
                        &s.pr[0][0], &(*s.left)[0][0], 0.25, coeff.data());
    for (std::size_t i = 0; i < coeff.size(); ++i) {
      ASSERT_EQ(ref_coeff[i], coeff[i]) << table->name << " coeff " << i;
    }
    AlignedVector<double> site(SyntheticPlanes::kPadded),
        d1(SyntheticPlanes::kPadded), d2(SyntheticPlanes::kPadded);
    table->edge_evaluate(SyntheticPlanes::kPadded, coeff.data(), s.e, s.lam,
                         false, true, site.data(), d1.data(), d2.data());
    table->edge_evaluate(SyntheticPlanes::kPadded, coeff.data(), s.e, s.lam,
                         true, true, site.data(), d1.data(), d2.data());
    for (std::size_t p = 0; p < SyntheticPlanes::kPadded; ++p) {
      ASSERT_EQ(ref_site[p], site[p]) << table->name << " site " << p;
      ASSERT_EQ(ref_d1[p], d1[p]) << table->name << " d1 " << p;
      ASSERT_EQ(ref_d2[p], d2[p]) << table->name << " d2 " << p;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine-level parity property test
// ---------------------------------------------------------------------------

// Random alignment with the pathologies that historically break layout
// changes: ambiguity codes from the simulator plus appended gap-only
// columns (every taxon kBaseUnknown — site likelihood exactly 1, pattern
// max never below threshold).
Alignment parity_alignment(int taxa, std::size_t sites, std::uint64_t seed,
                           Rng& tree_rng, Tree& tree_out) {
  tree_out = random_tree(taxa, tree_rng);
  Rng rng(seed);
  SimulateOptions options;
  options.num_sites = sites;
  Alignment sim =
      simulate_alignment(tree_out, default_taxon_names(taxa),
                         SubstModel::jc69(), RateModel::uniform(), options, rng);
  Alignment with_gaps;
  for (std::size_t t = 0; t < sim.num_taxa(); ++t) {
    std::basic_string<BaseCode> row = sim.row(t);
    row.push_back(kBaseUnknown);
    row.push_back(kBaseUnknown);
    with_gaps.add_sequence(sim.name(t), std::move(row));
  }
  return with_gaps;
}

struct ParityObservation {
  double lnl = 0.0;
  double edge_lnl = 0.0;
  double d1 = 0.0;
  double d2 = 0.0;
  std::vector<double> site_lnl;
  std::uint64_t clv_rescales = 0;
  std::string backend;
};

ParityObservation observe(const PatternAlignment& data, const SubstModel& model,
                          const RateModel& rates, const Tree& tree) {
  LikelihoodEngine engine(data, model, rates);
  engine.attach(tree);
  ParityObservation obs;
  obs.backend = engine.counters().simd_backend;
  obs.lnl = engine.log_likelihood();
  const auto [u, v] = tree.edges()[tree.edges().size() / 2];
  const EdgeLikelihood f = engine.edge_likelihood(u, v);
  obs.edge_lnl = f.evaluate(0.13, &obs.d1, &obs.d2);
  engine.site_log_likelihoods(obs.site_lnl);
  obs.clv_rescales = engine.counters().clv_rescales;
  return obs;
}

TEST(Simd, EngineParityAcrossBackends) {
  BackendGuard guard;
  struct Case {
    int taxa;
    int categories;
    std::size_t sites;
    std::uint64_t seed;
  };
  const Case cases[] = {{50, 1, 120, 11}, {97, 2, 130, 12}, {150, 4, 90, 13}};

  for (const Case& c : cases) {
    Rng tree_rng(c.seed);
    Tree tree(c.taxa);
    const Alignment alignment =
        parity_alignment(c.taxa, c.sites, c.seed * 101, tree_rng, tree);
    const PatternAlignment data(alignment);
    const SubstModel model =
        SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
    const RateModel rates = c.categories == 1
                                ? RateModel::uniform()
                                : RateModel::discrete_gamma(0.7, c.categories);

    ASSERT_TRUE(simd::set_backend("scalar"));
    const ParityObservation ref = observe(data, model, rates, tree);
    EXPECT_EQ(ref.backend, "scalar");
    EXPECT_TRUE(std::isfinite(ref.lnl));

    for (const KernelTable* table : usable_vector_tables()) {
      ASSERT_TRUE(simd::set_backend(table->name));
      const ParityObservation obs = observe(data, model, rates, tree);
      EXPECT_EQ(obs.backend, table->name);
      EXPECT_ULP_EQ(obs.lnl, ref.lnl) << table->name << " taxa " << c.taxa;
      EXPECT_ULP_EQ(obs.edge_lnl, ref.edge_lnl) << table->name;
      EXPECT_ULP_EQ(obs.d1, ref.d1) << table->name;
      EXPECT_ULP_EQ(obs.d2, ref.d2) << table->name;
      EXPECT_EQ(obs.clv_rescales, ref.clv_rescales) << table->name;
      ASSERT_EQ(obs.site_lnl.size(), ref.site_lnl.size());
      for (std::size_t s = 0; s < ref.site_lnl.size(); ++s) {
        ASSERT_LE(ulp_distance(obs.site_lnl[s], ref.site_lnl[s]), 2u)
            << table->name << " site " << s;
      }
    }
  }
}

TEST(Simd, DeepTreeRescalingParity) {
  BackendGuard guard;
  // Caterpillar deep enough that per-pattern rescaling must fire (CLV
  // magnitudes decay ~e^-1.1 per level here, so ~300 levels pushes them
  // well under 2^-256); the rescale path (movemask + per-lane fixup) must
  // agree across backends both in the values and in how often it fired.
  const int n = 300;
  Tree tree(n);
  tree.make_triplet(0, 1, 2, 0.4, 0.4, 0.4);
  for (int tip = 3; tip < n; ++tip) {
    tree.insert_tip(tip, tip - 1, tree.neighbor(tip - 1, 0), 0.4);
  }
  Rng rng(17);
  SimulateOptions options;
  options.num_sites = 40;
  const Alignment alignment =
      simulate_alignment(tree, default_taxon_names(n), SubstModel::jc69(),
                         RateModel::uniform(), options, rng);
  const PatternAlignment data(alignment);

  ASSERT_TRUE(simd::set_backend("scalar"));
  const ParityObservation ref =
      observe(data, SubstModel::jc69(), RateModel::uniform(), tree);
  EXPECT_GT(ref.clv_rescales, 0u) << "tree not deep enough to exercise scaling";
  EXPECT_TRUE(std::isfinite(ref.lnl));

  for (const KernelTable* table : usable_vector_tables()) {
    ASSERT_TRUE(simd::set_backend(table->name));
    const ParityObservation obs =
        observe(data, SubstModel::jc69(), RateModel::uniform(), tree);
    EXPECT_ULP_EQ(obs.lnl, ref.lnl) << table->name;
    EXPECT_EQ(obs.clv_rescales, ref.clv_rescales) << table->name;
    for (std::size_t s = 0; s < ref.site_lnl.size(); ++s) {
      ASSERT_LE(ulp_distance(obs.site_lnl[s], ref.site_lnl[s]), 2u)
          << table->name << " site " << s;
    }
  }
}

// ---------------------------------------------------------------------------
// Batched multi-edge evaluation parity
// ---------------------------------------------------------------------------

std::vector<std::string> all_usable_backend_names() {
  std::vector<std::string> names{"scalar"};
  for (const KernelTable* t : usable_vector_tables()) names.push_back(t->name);
  return names;
}

struct EdgeEval {
  double lnl = 0.0;
  double d1 = 0.0;
  double d2 = 0.0;
};

// The batched capture promises bit-identity — not ulp-closeness — to the
// edge-at-a-time path *within* each backend (edge_capture_multi performs
// each edge's arithmetic in exactly edge_capture's order; only the block
// interleaving across edges differs). The search layer builds on that to
// keep batched candidate scoring deterministic, so this asserts with == on
// every compiled backend, including batch sizes that don't divide the
// pattern-block width.
TEST(Simd, BatchCaptureMatchesEdgeLikelihood) {
  BackendGuard guard;
  Rng tree_rng(29);
  Tree tree(40);
  const Alignment alignment = parity_alignment(40, 100, 2902, tree_rng, tree);
  const PatternAlignment data(alignment);
  const SubstModel model =
      SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
  const RateModel rates = RateModel::discrete_gamma(0.7, 4);
  const std::vector<std::pair<int, int>> all_edges = tree.edges();
  ASSERT_GE(all_edges.size(), 32u);

  for (const std::string& backend : all_usable_backend_names()) {
    ASSERT_TRUE(simd::set_backend(backend));
    LikelihoodEngine engine(data, model, rates);
    engine.attach(tree);
    BatchEdgeEvaluator batch(engine);
    for (const std::size_t k_count : {1u, 2u, 7u, 32u}) {
      std::vector<BatchEdgeEvaluator::Edge> edges;
      for (std::size_t k = 0; k < k_count; ++k) {
        const auto [u, v] = all_edges[(k * 5) % all_edges.size()];
        edges.push_back({u, v});
      }
      batch.capture(edges);
      ASSERT_EQ(batch.size(), k_count);
      // Evaluate every view before touching engine.edge_likelihood — the
      // views share the engine's site scratch with it.
      std::vector<EdgeEval> got(k_count);
      for (std::size_t k = 0; k < k_count; ++k) {
        const double t = 0.05 + 0.01 * static_cast<double>(k);
        got[k].lnl = batch.view(k).evaluate(t, &got[k].d1, &got[k].d2);
      }
      for (std::size_t k = 0; k < k_count; ++k) {
        const double t = 0.05 + 0.01 * static_cast<double>(k);
        const EdgeLikelihood f =
            engine.edge_likelihood(edges[k].u, edges[k].v);
        EdgeEval ref;
        ref.lnl = f.evaluate(t, &ref.d1, &ref.d2);
        ASSERT_EQ(got[k].lnl, ref.lnl)
            << backend << " K=" << k_count << " edge " << k;
        ASSERT_EQ(got[k].d1, ref.d1)
            << backend << " K=" << k_count << " edge " << k;
        ASSERT_EQ(got[k].d2, ref.d2)
            << backend << " K=" << k_count << " edge " << k;
      }
    }
  }
}

// Same bit-identity promise under heavy per-pattern rescaling: a deep
// caterpillar drives CLV scale counters well past zero, so the views'
// scale offsets and the rescale-aware capture path are exercised.
TEST(Simd, BatchCaptureRescalingParity) {
  BackendGuard guard;
  const int n = 300;
  Tree tree(n);
  tree.make_triplet(0, 1, 2, 0.4, 0.4, 0.4);
  for (int tip = 3; tip < n; ++tip) {
    tree.insert_tip(tip, tip - 1, tree.neighbor(tip - 1, 0), 0.4);
  }
  Rng rng(37);
  SimulateOptions options;
  options.num_sites = 40;
  const Alignment alignment =
      simulate_alignment(tree, default_taxon_names(n), SubstModel::jc69(),
                         RateModel::uniform(), options, rng);
  const PatternAlignment data(alignment);
  const std::vector<std::pair<int, int>> all_edges = tree.edges();

  for (const std::string& backend : all_usable_backend_names()) {
    ASSERT_TRUE(simd::set_backend(backend));
    LikelihoodEngine engine(data, SubstModel::jc69(), RateModel::uniform());
    engine.attach(tree);
    // Edges spread across the caterpillar's depth, including the middle
    // where both endpoint CLVs carry large scale counts.
    std::vector<BatchEdgeEvaluator::Edge> edges;
    for (const std::size_t pick :
         {std::size_t{0}, all_edges.size() / 4, all_edges.size() / 2,
          3 * all_edges.size() / 4, all_edges.size() - 1}) {
      edges.push_back({all_edges[pick].first, all_edges[pick].second});
    }
    BatchEdgeEvaluator batch(engine);
    batch.capture(edges);
    EXPECT_GT(engine.counters().clv_rescales, 0u)
        << "tree not deep enough to exercise scaling";
    std::vector<EdgeEval> got(edges.size());
    for (std::size_t k = 0; k < edges.size(); ++k) {
      got[k].lnl = batch.view(k).evaluate(0.4, &got[k].d1, &got[k].d2);
      ASSERT_TRUE(std::isfinite(got[k].lnl)) << backend << " edge " << k;
    }
    for (std::size_t k = 0; k < edges.size(); ++k) {
      const EdgeLikelihood f = engine.edge_likelihood(edges[k].u, edges[k].v);
      EdgeEval ref;
      ref.lnl = f.evaluate(0.4, &ref.d1, &ref.d2);
      ASSERT_EQ(got[k].lnl, ref.lnl) << backend << " edge " << k;
      ASSERT_EQ(got[k].d1, ref.d1) << backend << " edge " << k;
      ASSERT_EQ(got[k].d2, ref.d2) << backend << " edge " << k;
    }
  }
}

// The insertion-scoring pipeline: capture_insertions builds each candidate
// junction CLV without mutating the tree, and newton_branch_solve off the
// captured view must land on the bit-identical branch length that a real
// splice + BranchOptimizer::optimize_edge produces. This is the parity the
// search layer's batched quick-add path stands on.
TEST(Simd, BatchInsertionMatchesRealInsertion) {
  BackendGuard guard;
  const int n = 16;
  Rng tree_rng(31);
  Tree full(n);
  const Alignment alignment = parity_alignment(n, 80, 3103, tree_rng, full);
  const PatternAlignment data(alignment);
  const SubstModel model =
      SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
  const RateModel rates = RateModel::discrete_gamma(0.7, 2);
  const int focus = n - 1;
  Tree base = full;
  base.remove_tip(focus);
  const OptimizeOptions options;

  // Harvest the exact post-splice local lengths per candidate (insert_tip
  // clamps tiny split halves to kMinBranchLength, so the batched path must
  // be fed the clamped values to match).
  struct Cand {
    int u, v;
    double length_u, length_v;
  };
  std::vector<Cand> cands;
  for (const auto& [u, v] : base.edges()) {
    Tree trial = base;
    const int j = trial.insert_tip(focus, u, v);
    cands.push_back({u, v, trial.length(j, u), trial.length(j, v)});
  }
  ASSERT_LE(cands.size(), BatchEdgeEvaluator::kMaxBatch);

  for (const std::string& backend : all_usable_backend_names()) {
    ASSERT_TRUE(simd::set_backend(backend));
    LikelihoodEngine engine(data, model, rates);
    engine.attach(base);
    BatchEdgeEvaluator batch(engine);
    std::vector<BatchEdgeEvaluator::Insertion> insertions;
    for (const Cand& c : cands) {
      insertions.push_back({c.u, c.v, c.length_u, c.length_v});
    }
    batch.capture_insertions(focus, insertions);
    ASSERT_EQ(batch.size(), cands.size());
    std::vector<double> batched_len(cands.size());
    std::vector<EdgeEval> batched(cands.size());
    for (std::size_t k = 0; k < cands.size(); ++k) {
      batched_len[k] =
          newton_branch_solve(batch.view(k), kDefaultBranchLength, options);
      batched[k].lnl =
          batch.view(k).evaluate(batched_len[k], &batched[k].d1, &batched[k].d2);
    }

    // Sequential reference: really splice the tip in, re-attach, and run
    // the production single-edge optimizer.
    LikelihoodEngine ref_engine(data, model, rates);
    for (std::size_t k = 0; k < cands.size(); ++k) {
      Tree trial = base;
      const int j = trial.insert_tip(focus, cands[k].u, cands[k].v);
      ref_engine.attach(trial);
      BranchOptimizer opt(ref_engine, options);
      const double len = opt.optimize_edge(trial, j, focus);
      ASSERT_EQ(batched_len[k], len) << backend << " candidate " << k;
      const EdgeLikelihood f = ref_engine.edge_likelihood(j, focus);
      EdgeEval ref;
      ref.lnl = f.evaluate(len, &ref.d1, &ref.d2);
      ASSERT_EQ(batched[k].lnl, ref.lnl) << backend << " candidate " << k;
      ASSERT_EQ(batched[k].d1, ref.d1) << backend << " candidate " << k;
      ASSERT_EQ(batched[k].d2, ref.d2) << backend << " candidate " << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Fast-math tier
// ---------------------------------------------------------------------------

// The fused tier trades the cross-backend bit-exactness promise for FMA
// throughput; what it must keep is accuracy. With well-conditioned inputs
// (probabilities and their logs) fusing only *removes* rounding, so the
// tier's log-likelihood has to sit within 1e-9 relative of the exact tier.
// Skipped unless the build compiled the tier (FDML_FAST_MATH=ON).
TEST(Simd, FastTierMatchesExactTierClosely) {
  bool have_fast = false;
  for (const simd::Tier t : simd::compiled_tiers()) {
    if (t == simd::Tier::kFast) have_fast = true;
  }
  if (!have_fast) {
    GTEST_SKIP() << "fast tier not compiled (configure with FDML_FAST_MATH=ON)";
  }
  BackendGuard guard;
  ASSERT_TRUE(simd::set_backend("auto"));
  Rng tree_rng(41);
  Tree tree(60);
  const Alignment alignment = parity_alignment(60, 150, 4105, tree_rng, tree);
  const PatternAlignment data(alignment);
  const SubstModel model =
      SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
  const RateModel rates = RateModel::discrete_gamma(0.7, 4);

  ASSERT_TRUE(simd::set_tier("exact"));
  double exact_lnl = 0.0;
  double exact_edge = 0.0;
  {
    LikelihoodEngine engine(data, model, rates);
    engine.attach(tree);
    exact_lnl = engine.log_likelihood();
    const auto [u, v] = tree.edges()[tree.edges().size() / 3];
    exact_edge = engine.edge_likelihood(u, v).evaluate(0.13);
  }

  ASSERT_TRUE(simd::set_tier("fast"));
  LikelihoodEngine engine(data, model, rates);
  engine.attach(tree);
  const double fast_lnl = engine.log_likelihood();
  const auto [u, v] = tree.edges()[tree.edges().size() / 3];
  const double fast_edge = engine.edge_likelihood(u, v).evaluate(0.13);

  ASSERT_TRUE(std::isfinite(fast_lnl));
  EXPECT_LT(std::fabs(fast_lnl - exact_lnl) / std::fabs(exact_lnl), 1e-9)
      << "fast " << fast_lnl << " vs exact " << exact_lnl;
  EXPECT_LT(std::fabs(fast_edge - exact_edge) / std::fabs(exact_edge), 1e-9)
      << "fast " << fast_edge << " vs exact " << exact_edge;
}

}  // namespace
